"""Durable-jobs benchmark: what does checkpointing cost?

Standalone script (not a pytest benchmark) so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_jobs.py --quick

Three measurements against one warm session:

1. **direct** — ``run_study`` over a capacity x flavor x method matrix,
   in process, no queue, no store.  The floor.
2. **jobs cold** — the same matrix through the full durable path:
   submit to a fresh SQLite queue, claim, execute cell by cell with a
   store put + heartbeat after every cell.  The difference against
   (1) is the per-sweep checkpointing overhead.
3. **jobs resumed** — an equivalent spec resubmitted against the warm
   store: every cell is found by key and skipped.  This is the resume /
   dedup fast path.

Plus queue micro-latencies (submit / claim / heartbeat / complete) and
store put/get round trips, sampled individually.

Writes the machine-readable ``BENCH_jobs.json`` baseline (repo root).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

from repro.analysis.experiments import Session
from repro.analysis.runner import run_study
from repro.jobs import JobQueue, run_worker
from repro.jobs.worker import SessionProvider
from repro.store import ExperimentStore

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_jobs.json")
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")

FULL = {"capacities": [128, 512, 2048], "flavors": ["lvt", "hvt"],
        "methods": ["M1", "M2"]}
QUICK = {"capacities": [128], "flavors": ["lvt"], "methods": ["M1", "M2"]}

MICRO_ROUNDS = 200


def _time(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _micro_latencies(db_path):
    """Per-operation queue/store latencies, milliseconds."""
    queue = JobQueue(db_path)
    store = ExperimentStore(db_path)
    payload = {"metrics": {"edp": 3.14e-25}, "design": {"n_r": 64}}
    timings = {}

    def sample(name, op):
        start = time.perf_counter()
        for index in range(MICRO_ROUNDS):
            op(index)
        timings[name] = ((time.perf_counter() - start)
                         / MICRO_ROUNDS * 1e3)

    job_ids = []
    sample("submit_ms", lambda i: job_ids.append(
        queue.submit("study", {"capacities": [128]})))
    claimed = []
    sample("claim_ms", lambda i: claimed.append(queue.claim("bench-w")))
    sample("heartbeat_ms",
           lambda i: queue.heartbeat(claimed[i].id, "bench-w", 30.0,
                                     progress={"completed": i}))
    sample("complete_ms",
           lambda i: queue.complete(claimed[i].id, "bench-w"))
    sample("store_put_ms",
           lambda i: store.put("cell-bench-%d" % i, payload))
    sample("store_get_ms", lambda i: store.get("cell-bench-%d" % i))
    return timings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (2-cell matrix)")
    parser.add_argument("--output", default=BASELINE_PATH,
                        help="where to write BENCH_jobs.json")
    args = parser.parse_args(argv)
    matrix = QUICK if args.quick else FULL
    n_cells = (len(matrix["capacities"]) * len(matrix["flavors"])
               * len(matrix["methods"]))

    print("building session (warm characterization cache)...")
    session = Session.create(cache_path=CACHE_PATH, voltage_mode="paper")
    sessions = SessionProvider(default_cache_path=CACHE_PATH)
    sessions.seed(session, cache_path=CACHE_PATH)
    spec = dict(matrix, cache_path=CACHE_PATH)

    def direct():
        return run_study(
            session=session, capacities=tuple(matrix["capacities"]),
            flavors=tuple(matrix["flavors"]),
            methods=tuple(matrix["methods"]), workers=1)

    print("warming engine state (untimed run_study pass)...")
    direct()
    print("direct run_study over %d cells..." % n_cells)
    _, direct_s = _time(direct)

    with tempfile.TemporaryDirectory(prefix="repro-bench-jobs-") as d:
        db_path = os.path.join(d, "jobs.db")
        queue = JobQueue(db_path)

        print("same matrix through the durable path (cold store)...")
        queue.submit("study", spec)
        cold_stats, cold_s = _time(lambda: run_worker(
            db_path, once=True, poll_interval=0.05, sessions=sessions,
            worker_id="bench-cold"))
        assert cold_stats.jobs_done == 1, "cold job did not finish"
        assert cold_stats.cells_computed == n_cells

        print("equivalent spec resubmitted (warm store, all skipped)...")
        queue.submit("study", spec)
        warm_stats, warm_s = _time(lambda: run_worker(
            db_path, once=True, poll_interval=0.05, sessions=sessions,
            worker_id="bench-warm"))
        assert warm_stats.jobs_done == 1, "warm job did not finish"
        assert warm_stats.cells_skipped == n_cells
        assert warm_stats.cells_computed == 0

        print("queue/store micro-latencies (%d rounds each)..."
              % MICRO_ROUNDS)
        micro = _micro_latencies(os.path.join(d, "micro.db"))

    overhead_s = cold_s - direct_s
    baseline = {
        "schema": "BENCH_jobs/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpus": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "mode": "quick" if args.quick else "full",
        "matrix": dict(matrix, cells=n_cells),
        "direct_seconds": direct_s,
        "jobs_cold_seconds": cold_s,
        "jobs_resumed_seconds": warm_s,
        "checkpoint_overhead_seconds": overhead_s,
        "checkpoint_overhead_per_cell_ms": overhead_s / n_cells * 1e3,
        "checkpoint_overhead_fraction": (overhead_s / direct_s
                                         if direct_s else 0.0),
        "resume_speedup_vs_direct": (direct_s / warm_s
                                     if warm_s else 0.0),
        "micro_latency_ms": micro,
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print("direct        %7.2f s  (%d cells)" % (direct_s, n_cells))
    print("jobs cold     %7.2f s  (+%.1f ms/cell checkpointing, %+.1f%%)"
          % (cold_s, baseline["checkpoint_overhead_per_cell_ms"],
             100.0 * baseline["checkpoint_overhead_fraction"]))
    print("jobs resumed  %7.2f s  (%.0fx faster than direct)"
          % (warm_s, baseline["resume_speedup_vs_direct"]))
    print("micro         " + "  ".join(
        "%s=%.2f" % (k, v) for k, v in sorted(micro.items())))
    print("jobs baseline written to %s" % args.output)

    # Sanity gates: the durable path must stay cheap relative to the
    # engine work, and the resume path must actually skip it.
    assert warm_s < direct_s, "resume path slower than recompute"
    return 0


if __name__ == "__main__":
    sys.exit(main())
