"""Extension benchmark: the 8T cell the paper decided *not* to use.

The paper's introduction dismisses larger robust cells ("more robust
SRAM cell structures exist, but ... at the cost of larger layout
area") and instead rescues the all-single-fin 6T cell with assist
voltages.  This benchmark quantifies the alternative at the cell
level: an 8T cell with an HVT storage core and an LVT read port vs the
paper's assisted 6T-HVT cell.

The comparison the paper implicitly made (measured outcome):

* read margin — the 8T wins outright (read SNM = hold SNM, no boost
  rail needed at all);
* read current — the LVT read port doubles the *unassisted* 6T-HVT
  read current, but the negative-Gnd-assisted 6T (V_SSC = -100 mV)
  overtakes it: the assist rail buys more drive than the decoupled
  port does;
* leakage — the LVT read buffer costs ~8x the 6T-HVT standby power;
* area — ~1.3x the 6T footprint, the paper's stated reason to decline.
"""

from repro.analysis.tables import render_dict_table
from repro.cell import (
    AREA_RATIO_VS_6T,
    SRAM8TCell,
    cell_leakage_power,
    read_current,
    read_snm,
)


def bench_8t_alternative(benchmark, paper_session, report_writer):
    library = paper_session.library
    vdd = library.vdd
    cell_6t = paper_session.cells["hvt"]

    def build_rows():
        cell_8t = SRAM8TCell.from_library(library, "hvt", "lvt")
        return cell_8t, [
            {
                "cell": "6T-HVT (no assist)",
                "read_margin_mV": read_snm(cell_6t, vdd=vdd) * 1e3,
                "I_read_uA": read_current(cell_6t, vdd=vdd) * 1e6,
                "leak_nW": cell_leakage_power(cell_6t, vdd) * 1e9,
                "rel_area": 1.0,
                "extra_rails": 0,
            },
            {
                "cell": "6T-HVT + assists",
                "read_margin_mV":
                    read_snm(cell_6t, vdd=vdd, v_ddc=0.550) * 1e3,
                "I_read_uA": read_current(cell_6t, vdd=vdd, v_ddc=0.550,
                                          v_ssc=-0.100) * 1e6,
                "leak_nW": cell_leakage_power(cell_6t, vdd) * 1e9,
                "rel_area": 1.0,
                "extra_rails": 2,
            },
            {
                "cell": "8T HVT core / LVT port",
                "read_margin_mV": cell_8t.read_snm(vdd) * 1e3,
                "I_read_uA": cell_8t.read_current(vdd) * 1e6,
                "leak_nW": cell_8t.leakage_power(vdd) * 1e9,
                "rel_area": AREA_RATIO_VS_6T,
                "extra_rails": 0,
            },
        ]

    cell_8t, rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report_writer(
        "8t_alternative",
        render_dict_table(rows, title="Assisted 6T vs 8T (cell level)"),
    )

    bare, assisted, alt = rows
    # The 8T read margin beats even the boosted 6T RSNM, with no rails.
    assert alt["read_margin_mV"] > assisted["read_margin_mV"]
    # The LVT read port doubles the unassisted 6T read current...
    assert alt["I_read_uA"] > 1.5 * bare["I_read_uA"]
    # ... but the negative-Gnd assist buys even more drive: the paper's
    # assisted 6T out-reads the decoupled port.
    assert assisted["I_read_uA"] > alt["I_read_uA"]
    # The LVT read buffer leaks heavily against the precharged RBL...
    assert alt["leak_nW"] > 3.0 * bare["leak_nW"]
    # ... and the 8T costs area — the paper's stated reason to decline.
    assert alt["rel_area"] > bare["rel_area"]
