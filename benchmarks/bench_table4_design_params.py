"""Table 4 benchmark: minimum-EDP design parameters for every capacity,
flavor, and rail method, side by side with the paper's reported values.

Shape checks: the optimizer must reproduce the paper's qualitative
design moves — M2 arrays exploit deep negative Gnd (HVT at/near
-240 mV), M2 buys larger prechargers than M1 (the faster bitline lets
precharge time matter more), write buffers stay small, and larger
capacities shift to taller (more rows per column... fewer columns)
organizations once the negative-Gnd assist restores the read current.
"""

from repro.analysis import optimize_all
from repro.analysis.paper_data import table4_comparison_rows
from repro.analysis.tables import render_dict_table


def bench_table4(benchmark, paper_session, report_writer):
    sweep = benchmark.pedantic(
        optimize_all, args=(paper_session,), rounds=1, iterations=1,
    )
    side_by_side = render_dict_table(
        table4_comparison_rows(sweep),
        title="Table 4, ours/paper per entry",
    )
    report_writer("table4_design_params",
                  sweep.report() + "\n\n" + side_by_side)

    for capacity in (1024, 4096, 16384):
        hvt_m2 = sweep.get(capacity, "hvt", "M2").design
        hvt_m1 = sweep.get(capacity, "hvt", "M1").design
        # Deep negative Gnd is always selected under M2.
        assert hvt_m2.v_ssc <= -0.15
        # M1 has no negative rail by construction.
        assert hvt_m1.v_ssc == 0.0
        # M2's faster bitline supports equal-or-larger prechargers.
        assert hvt_m2.n_pre >= hvt_m1.n_pre
        # Write buffers stay small (the paper: write delay has slack).
        assert hvt_m2.n_wr <= 8

    # The 4KB M2 arrays adopt the paper's tall 512x64 organization.
    assert sweep.get(4096, "hvt", "M2").design.n_r == 512
    assert sweep.get(4096, "lvt", "M2").design.n_r == 512

    # Every chosen design satisfies the yield constraint.
    for result in sweep.results.values():
        hsnm, rsnm, wm = result.margins
        assert min(hsnm, rsnm) >= paper_session.delta - 1e-9
