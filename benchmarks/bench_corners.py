"""Extension benchmark: cell figures of merit across process corners.

The paper's yield analysis covers random within-die variation; this
benchmark adds the systematic die-to-die corners (TT/FF/SS/FS/SF via
global +-15 mV Vt shifts) and reports how the 6T-HVT cell's margins,
leakage, read current, and writability move — i.e. whether the chosen
assist levels still clear the 0.35*Vdd floor at the worst corner.
"""

from repro.analysis.tables import render_dict_table
from repro.devices import corner_sweep


def bench_process_corners(benchmark, paper_session, report_writer):
    library = paper_session.library
    summaries = benchmark.pedantic(
        corner_sweep, args=(library, "hvt"), rounds=1, iterations=1,
    )
    rows = []
    for name in ("tt", "ff", "ss", "fs", "sf"):
        s = summaries[name]
        rows.append({
            "corner": name.upper(),
            "HSNM_mV": s.hsnm * 1e3,
            "RSNM_mV": s.rsnm * 1e3,
            "leak_nW": s.leakage * 1e9,
            "I_read_uA": s.i_read * 1e6,
            "WL_flip_mV": s.v_wl_flip * 1e3,
        })
    report_writer(
        "corners",
        render_dict_table(rows, title="6T-HVT across process corners"),
    )

    tt = summaries["tt"]
    # Hold margin survives every corner at nominal Vdd.
    delta = 0.35 * library.vdd
    for s in summaries.values():
        assert s.hsnm >= delta * 0.85
    # FF: leakier and faster; SS: the opposite.
    assert summaries["ff"].leakage > tt.leakage > summaries["ss"].leakage
    assert summaries["ff"].i_read > tt.i_read > summaries["ss"].i_read
    # Writability worst case is SF (weak access, strong pull-up): the
    # paper's WLOD level must still cover it with margin to spare.
    worst_flip = max(s.v_wl_flip for s in summaries.values())
    assert worst_flip < 0.540  # the adopted V_WL
