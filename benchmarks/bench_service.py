"""Optimization-service benchmark: dynamic batching on vs off.

Standalone script (not a pytest benchmark) so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_service.py --quick

Boots a real server twice — once with the dynamic batcher enabled
(max_wait window, batches up to ``max_batch``) and once with it
disabled (every request dispatches alone) — and drives each with the
same closed-loop mixed workload from N concurrent clients: unique-seed
Monte Carlo draws (engine work that coalesces), design-point
evaluations (a few distinct designs, so the result cache sees repeats),
and a sprinkle of optimize calls (cache hits after first touch).

Writes the machine-readable ``BENCH_service.json`` baseline (repo
root): exact p50/p95/p99 latency from the raw samples, throughput, the
server's batch-size histogram, and cache hit rates for both scenarios.

A second pair of scenarios drives concurrent *distinct* fused optimize
requests with request fusion on (widened per-endpoint batch window)
versus off, recording the optimize batch-size buckets, throughput, and
how many groups fused into policy-batched ``optimize_many`` dispatches.

A third scenario drives ``/v1/pareto`` against a store-backed server:
every combo's front is swept exactly once by the bound-and-prune
engine, repeat requests resolve from the result cache, and requests
differing only in their ``E^a D^b`` exponents dedup through the
exponent-free store payload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.experiments import Session
from repro.service import ServerThread, ServiceClient, ServiceConfig

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_service.json")
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")

#: Clients x requests-per-client per scenario.
FULL = {"clients": 8, "requests": 60, "mc_samples": 4}
QUICK = {"clients": 4, "requests": 15, "mc_samples": 3}

#: A few distinct design points so /v1/evaluate traffic repeats (cache).
DESIGNS = tuple(
    {"n_r": n_r, "n_c": 32, "n_pre": 2, "n_wr": 2,
     "v_ddc": v_ddc, "v_ssc": 0.0, "v_wl": v_wl, "v_bl": 0.0}
    for n_r, v_ddc, v_wl in (
        (64, 0.60, 0.55), (128, 0.65, 0.60), (64, 0.70, 0.65),
        (256, 0.60, 0.60),
    )
)

OPTIMIZE_CAPACITIES = (128, 256, 1024)


def _worker(port, worker_id, sizing, seed_base):
    """One closed-loop client; returns its per-request latencies [s]."""
    latencies = []
    with ServiceClient(port=port) as client:
        for j in range(sizing["requests"]):
            start = time.perf_counter()
            if j % 5 == 0:
                client.evaluate(DESIGNS[(worker_id + j) % len(DESIGNS)],
                                flavor="hvt")
            elif j % 5 == 1:
                client.optimize(
                    OPTIMIZE_CAPACITIES[(worker_id + j)
                                        % len(OPTIMIZE_CAPACITIES)],
                    flavor="hvt", method="M2")
            else:
                client.montecarlo(
                    sizing["mc_samples"], flavor="hvt",
                    seed=seed_base + worker_id * 10_000 + j,
                    metrics=("hsnm",))
            latencies.append(time.perf_counter() - start)
    return latencies


def _percentile(samples, q):
    """Exact percentile from the raw samples (nearest-rank)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _run_scenario(label, session, sizing, batching, seed_base):
    config = ServiceConfig(
        port=0, executor="thread", workers=max(2, sizing["clients"] // 2),
        max_batch=8 if batching else 1,
        max_wait_ms=5.0 if batching else 0.0,
        cache_path=CACHE_PATH,
    )
    with ServerThread(config, session=session) as running:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=sizing["clients"]) as pool:
            futures = [
                pool.submit(_worker, running.port, worker_id, sizing,
                            seed_base)
                for worker_id in range(sizing["clients"])
            ]
            latencies = [s for f in futures for s in f.result()]
        elapsed = time.perf_counter() - start
        with ServiceClient(port=running.port) as client:
            metrics = client.metrics()

    batch_sizes = {
        kind: {"count": h["count"], "mean": h["sum"] / h["count"],
               "max": h["max"], "buckets": h["buckets"]}
        for kind, h in metrics["batch_sizes"].items()
    }
    report = {
        "batching": batching,
        "requests": len(latencies),
        "seconds": elapsed,
        "throughput_rps": len(latencies) / elapsed,
        "latency_ms": {
            "mean": sum(latencies) / len(latencies) * 1e3,
            "p50": _percentile(latencies, 0.50) * 1e3,
            "p95": _percentile(latencies, 0.95) * 1e3,
            "p99": _percentile(latencies, 0.99) * 1e3,
            "max": max(latencies) * 1e3,
        },
        "batch_sizes": batch_sizes,
        "cache": {
            "hits": metrics["cache"]["hits"],
            "misses": metrics["cache"]["misses"],
            "hit_rate": metrics["cache"]["hit_rate"],
        },
        "singleflight": metrics["singleflight"],
    }
    print("%-13s %4d req in %6.2f s  %6.1f req/s  "
          "p50=%6.1f ms  p95=%6.1f ms  p99=%6.1f ms  cache=%.0f%%"
          % (label, report["requests"], elapsed,
             report["throughput_rps"], report["latency_ms"]["p50"],
             report["latency_ms"]["p95"], report["latency_ms"]["p99"],
             100.0 * report["cache"]["hit_rate"]))
    return report


#: The distinct fused-optimize requests of the fusion scenarios: every
#: (capacity, method) combo shares one ("optimize", "hvt", "fused")
#: batch group, so concurrent misses can fuse into policy-batched
#: optimize_many dispatches.
FUSION_COMBOS = tuple(
    (capacity, method)
    for capacity in OPTIMIZE_CAPACITIES
    for method in ("M1", "M2")
)


def _fusion_worker(port, combo):
    capacity, method = combo
    start = time.perf_counter()
    with ServiceClient(port=port) as client:
        client.optimize(capacity, flavor="hvt", method=method,
                        engine="fused")
    return time.perf_counter() - start


def _run_fusion_scenario(label, session, fusion):
    """All FUSION_COMBOS requested concurrently, once each.

    With fusion on, the optimize endpoint gets a widened batch window
    (per-endpoint override), so the concurrent distinct misses coalesce
    and same-capacity policies score through one ``optimize_many``
    dispatch.  With fusion off every request dispatches alone.
    """
    config = ServiceConfig(
        port=0, executor="thread", workers=2,
        max_batch=8 if fusion else 1,
        max_wait_ms=5.0 if fusion else 0.0,
        endpoint_overrides=(
            {"optimize": {"max_wait_ms": 100.0}} if fusion else None
        ),
        cache_path=CACHE_PATH,
    )
    from repro import perf

    def counter(name):
        # The thread executor records engine perf in this process's
        # global registry, which outlives each ServerThread — deltas
        # keep one scenario's counts out of the next one's report.
        return perf.get_registry().snapshot()["counters"].get(name, 0)

    before_fused = counter("service.engine.optimize_fused_dispatches")
    before_searches = counter("service.engine.optimize_searches")
    with ServerThread(config, session=session) as running:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(FUSION_COMBOS)) as pool:
            latencies = list(pool.map(
                lambda combo: _fusion_worker(running.port, combo),
                FUSION_COMBOS,
            ))
        elapsed = time.perf_counter() - start
        with ServiceClient(port=running.port) as client:
            metrics = client.metrics()

    sizes = metrics["batch_sizes"].get("optimize", {"count": 0})
    report = {
        "fusion": fusion,
        "requests": len(latencies),
        "seconds": elapsed,
        "throughput_rps": len(latencies) / elapsed,
        "latency_ms": {
            "mean": sum(latencies) / len(latencies) * 1e3,
            "max": max(latencies) * 1e3,
        },
        "optimize_batch_sizes": {
            "count": sizes["count"],
            "mean": (sizes["sum"] / sizes["count"]
                     if sizes.get("count") else 0.0),
            "max": sizes.get("max", 0),
            "buckets": sizes.get("buckets", {}),
        },
        "fused_dispatches": (
            counter("service.engine.optimize_fused_dispatches")
            - before_fused),
        "searches": (counter("service.engine.optimize_searches")
                     - before_searches),
    }
    print("%-13s %4d req in %6.2f s  %6.1f req/s  "
          "mean batch=%.1f  fused dispatches=%d"
          % (label, report["requests"], elapsed,
             report["throughput_rps"],
             report["optimize_batch_sizes"]["mean"],
             report["fused_dispatches"]))
    return report


#: The distinct /v1/pareto requests of the Pareto scenario.
PARETO_COMBOS = tuple(
    (capacity, method)
    for capacity in OPTIMIZE_CAPACITIES
    for method in ("M1", "M2")
)


def _run_pareto_scenario(label, session, store_path):
    """Three concurrent waves over PARETO_COMBOS: a cold sweep, an
    exponent-shifted wave (store dedup: zero new sweeps), and an exact
    repeat (result-cache hits)."""
    from repro import perf

    def counter(name):
        return perf.get_registry().snapshot()["counters"].get(name, 0)

    config = ServiceConfig(
        port=0, executor="thread", workers=2, max_wait_ms=5.0,
        cache_path=CACHE_PATH, store_path=store_path,
    )
    before_sweeps = counter("service.engine.pareto_sweeps")
    with ServerThread(config, session=session) as running:
        def call(combo, energy_exponent, delay_exponent):
            capacity, method = combo
            start = time.perf_counter()
            with ServiceClient(port=running.port) as client:
                payload = client.pareto(
                    capacity, flavor="hvt", method=method,
                    energy_exponent=energy_exponent,
                    delay_exponent=delay_exponent)
            return time.perf_counter() - start, payload

        start = time.perf_counter()
        latencies = []
        payloads = []
        for exponents in ((1.0, 1.0), (1.0, 2.0), (1.0, 1.0)):
            with ThreadPoolExecutor(
                    max_workers=len(PARETO_COMBOS)) as pool:
                wave = list(pool.map(
                    lambda combo: call(combo, *exponents),
                    PARETO_COMBOS,
                ))
            latencies += [seconds for seconds, _ in wave]
            payloads.append([payload for _, payload in wave])
        elapsed = time.perf_counter() - start
        with ServiceClient(port=running.port) as client:
            metrics = client.metrics()

    report = {
        "requests": len(latencies),
        "combos": len(PARETO_COMBOS),
        "seconds": elapsed,
        "throughput_rps": len(latencies) / elapsed,
        "latency_ms": {
            "mean": sum(latencies) / len(latencies) * 1e3,
            "p50": _percentile(latencies, 0.50) * 1e3,
            "max": max(latencies) * 1e3,
        },
        "sweeps": counter("service.engine.pareto_sweeps") - before_sweeps,
        "front_sizes": {
            "%dB/%s" % combo: len(payload["front"])
            for combo, payload in zip(PARETO_COMBOS, payloads[0])
        },
        "tiles_pruned": sum(p["tiles_pruned"] for p in payloads[0]),
        "cache": {
            "hits": metrics["cache"]["hits"],
            "misses": metrics["cache"]["misses"],
        },
    }
    print("%-13s %4d req in %6.2f s  %6.1f req/s  sweeps=%d  "
          "cache hits=%d"
          % (label, report["requests"], elapsed,
             report["throughput_rps"], report["sweeps"],
             report["cache"]["hits"]))

    # Every front must be non-empty, exponent-shifted answers must share
    # the cold wave's fronts (store dedup, no second sweep), and the
    # exact repeats must be cache hits.
    for wave in payloads:
        assert all(payload["front"] for payload in wave)
    for cold, shifted in zip(payloads[0], payloads[1]):
        assert cold["front"] == shifted["front"]
        assert shifted["best_weighted"]["delay_exponent"] == 2.0
    assert report["sweeps"] == len(PARETO_COMBOS), (
        "store dedup failed: exponent-shifted wave re-ran sweeps"
    )
    assert all(p["meta"]["cached"] for p in payloads[2])
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (fewer clients/requests)")
    parser.add_argument("--output", default=BASELINE_PATH,
                        help="where to write BENCH_service.json")
    args = parser.parse_args(argv)
    sizing = QUICK if args.quick else FULL

    print("building session (warm characterization cache)...")
    session = Session.create(cache_path=CACHE_PATH, voltage_mode="paper")

    print("driving %d clients x %d requests per scenario..."
          % (sizing["clients"], sizing["requests"]))
    batched = _run_scenario("batching-on", session, sizing,
                            batching=True, seed_base=1_000_000)
    unbatched = _run_scenario("batching-off", session, sizing,
                              batching=False, seed_base=2_000_000)

    print("driving %d concurrent fused optimize requests per fusion "
          "scenario..." % len(FUSION_COMBOS))
    fusion_on = _run_fusion_scenario("fusion-on", session, fusion=True)
    fusion_off = _run_fusion_scenario("fusion-off", session,
                                      fusion=False)

    print("driving 3 waves of %d concurrent /v1/pareto requests..."
          % len(PARETO_COMBOS))
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        pareto = _run_pareto_scenario(
            "pareto", session, os.path.join(tmp, "store.db"))

    baseline = {
        "schema": "BENCH_service/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpus": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "mode": "quick" if args.quick else "full",
        "config": {
            "clients": sizing["clients"],
            "requests_per_client": sizing["requests"],
            "mc_samples": sizing["mc_samples"],
            "executor": "thread",
            "workload": "60% montecarlo / 20% evaluate / 20% optimize",
        },
        "batching_on": batched,
        "batching_off": unbatched,
        "throughput_ratio": (batched["throughput_rps"]
                             / unbatched["throughput_rps"]),
        "optimize_fusion": {
            "combos": ["%dB/%s" % combo for combo in FUSION_COMBOS],
            "fusion_on": fusion_on,
            "fusion_off": fusion_off,
            "throughput_ratio": (fusion_on["throughput_rps"]
                                 / fusion_off["throughput_rps"]),
        },
        "pareto": pareto,
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("throughput ratio (on/off): %.2fx"
          % baseline["throughput_ratio"])
    print("service baseline written to %s" % args.output)

    # Sanity gates: batching must actually have coalesced work, and the
    # repeated evaluate/optimize traffic must have hit the cache.
    mc_batches = batched["batch_sizes"].get("montecarlo")
    assert mc_batches and mc_batches["max"] > 1, (
        "batching-on scenario never coalesced a Monte Carlo batch"
    )
    assert batched["cache"]["hits"] > 0, "cache saw no repeat traffic"
    # Fusion gates: with fusion on, concurrent distinct optimize
    # requests must share dispatches (mean batch > 1) and at least one
    # policy batch must have gone through optimize_many.
    assert fusion_on["optimize_batch_sizes"]["mean"] > 1, (
        "fusion-on scenario never shared an optimize dispatch"
    )
    assert fusion_on["fused_dispatches"] >= 1, (
        "fusion-on scenario never policy-batched an optimize group"
    )
    assert fusion_off["optimize_batch_sizes"]["mean"] <= 1.0
    return 0


if __name__ == "__main__":
    sys.exit(main())
