"""Figure 3 benchmark: read-assist trade-offs on the 6T-HVT cell.

Regenerates (a) the no-assist RSNM / read-current comparison of the two
flavors, (b) the Vdd-boost sweep, (c) the negative-Gnd sweep, (d) the
WL-underdrive sweep, plus the cross points the paper calls out (HVT
needs V_DDC = 550 mV; V_SSC ~ -100 mV recovers the LVT no-assist BL
delay; WLUD must drop to ~300 mV and costs read current).
"""

from repro.analysis import fig3_read_assists


def bench_fig3(benchmark, paper_session, report_writer):
    result = benchmark.pedantic(
        fig3_read_assists, args=(paper_session,), rounds=1, iterations=1,
    )
    report_writer("fig3_read_assists", result.report())

    # (a) HVT has better RSNM but ~half the read current.
    assert result.rsnm_ratio > 1.0
    assert 0.4 <= result.iread_ratio <= 0.6

    # (b) Vdd boost raises RSNM monotonically; HVT crosses delta at the
    # paper's 550 mV.
    hvt_rows = result.boost_rows["hvt"]
    rsnms = [r.rsnm for r in hvt_rows]
    assert all(a < b for a, b in zip(rsnms, rsnms[1:]))
    assert abs(result.v_ddc_cross["hvt"] - 0.550) <= 0.020
    # LVT needs a higher boost than HVT.
    assert result.v_ddc_cross["lvt"] > result.v_ddc_cross["hvt"]

    # (c) Negative Gnd cuts BL delay monotonically (levels go 0 -> -240).
    delays = [r.bl_delay for r in result.gnd_rows]
    assert all(a > b for a, b in zip(delays, delays[1:]))
    # The LVT-delay-matching point sits in the paper's neighbourhood.
    assert -0.16 <= result.v_ssc_match <= -0.05

    # (d) WL underdrive helps RSNM but hurts BL delay (levels fall).
    wlud = result.wlud_rows
    assert wlud[0].rsnm < wlud[-1].rsnm
    assert wlud[0].bl_delay < wlud[-1].bl_delay
    assert 0.24 <= result.v_wl_cross <= 0.40
