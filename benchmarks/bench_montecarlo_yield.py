"""Monte Carlo yield benchmark: the basis of the 0.35*Vdd constraint.

The paper justifies ``min(HSNM, RSNM, WM) >= 0.35 * Vdd`` with a Monte
Carlo analysis of margin distributions under process variation.  This
benchmark reruns that analysis on our cells: per-transistor Pelgrom Vt
sampling, margin re-extraction, and the implied nominal-margin fraction
for a 3-sigma design.
"""

from repro.cell import CellBias, SRAM6TCell, run_cell_montecarlo

N_SAMPLES = 150


def bench_montecarlo_yield(benchmark, paper_session, report_writer):
    library = paper_session.library
    vdd = library.vdd
    cell = SRAM6TCell.from_library(library, "hvt")
    read_bias = CellBias.read(vdd=vdd, v_ddc=0.550)

    result = benchmark.pedantic(
        run_cell_montecarlo,
        args=(cell,),
        kwargs=dict(n_samples=N_SAMPLES, seed=7, vdd=vdd,
                    read_bias=read_bias, metrics=("hsnm", "rsnm")),
        rounds=1, iterations=1,
    )
    lines = ["Monte Carlo yield, 6T-HVT, %d samples:" % N_SAMPLES]
    for name in ("hsnm", "rsnm"):
        s = result.metric(name)
        lines.append(
            "  %-4s mu=%.1f mV sigma=%.1f mV mu-3sigma=%.1f mV "
            "yield@0.35Vdd=%.1f%%"
            % (name.upper(), s.mean * 1e3, s.sigma * 1e3,
               s.mu_minus_k_sigma(3.0) * 1e3,
               s.yield_at(0.35 * vdd) * 100.0)
        )
    lines.append("  joint yield at the delta floor: %.1f%%"
                 % (result.worst_case_yield(0.35 * vdd) * 100.0))
    report_writer("montecarlo_yield", "\n".join(lines))

    for name in ("hsnm", "rsnm"):
        samples = result.metric(name)
        # Variation spreads the margins but the boosted cell must stay
        # 3-sigma safe — that is exactly what the delta floor buys: a
        # nominal margin of ~0.35*Vdd keeps mu - 3 sigma above zero, so
        # essentially no sampled cell actually fails.
        assert samples.sigma > 0.002
        assert samples.mu_minus_k_sigma(3.0) > 0.0
    assert result.worst_case_yield(0.0) > 0.99
    # The delta floor itself sits near the distribution mean at the
    # *minimum* assist level, so the at-floor yield is ~50% by design.
    assert result.worst_case_yield(0.35 * vdd) > 0.05
