"""Figure 2 benchmark: HSNM and leakage power of 6T-LVT vs 6T-HVT under
supply scaling from 100 mV to the nominal 450 mV.

Shape checks reproduced from the paper: ~20x leakage gap at nominal,
LVT-at-100mV still leaking several times more than HVT-at-450mV, HVT
holding margin at every swept supply while LVT fails below ~250 mV.
"""

from repro.analysis import fig2_cell_vdd_scaling


def bench_fig2(benchmark, paper_session, report_writer):
    result = benchmark.pedantic(
        fig2_cell_vdd_scaling, args=(paper_session,),
        rounds=1, iterations=1,
    )
    report_writer("fig2_cell_vdd_scaling", result.report())

    # 20x leakage reduction at nominal Vdd.
    assert 18.0 <= result.leakage_reduction_at_nominal() <= 23.0
    # LVT at 100 mV still leaks a few times more than HVT at 450 mV.
    assert result.lvt_low_vs_hvt_nominal() > 2.0
    # Leakage decreases monotonically with Vdd for both flavors.
    for flavor in ("lvt", "hvt"):
        leaks = result.leakage[flavor]
        assert all(a < b for a, b in zip(leaks, leaks[1:]))
    # LVT cannot meet the hold-yield floor under 250 mV (paper) and HVT
    # is never worse.  Known deviation (see EXPERIMENTS.md): the paper's
    # HVT holds margin down to 100 mV, while our compact model — whose
    # LVT and HVT share one subthreshold slope — has the two flavors
    # converge at deep-subthreshold supplies.
    hvt_ok = result.hsnm_yield_vdd("hvt")
    lvt_ok = result.hsnm_yield_vdd("lvt")
    assert lvt_ok is not None and abs(lvt_ok - 0.25) < 0.06
    assert hvt_ok is not None and hvt_ok <= lvt_ok
    for h_l, h_h in zip(result.hsnm["lvt"], result.hsnm["hvt"]):
        assert h_h >= h_l - 0.001
    # Both flavors hold comfortably at the nominal supply (paper: HSNM
    # in both SRAMs at 450 mV is above delta).
    assert result.hsnm["lvt"][-1] >= 0.35 * 0.45
    assert result.hsnm["hvt"][-1] >= 0.35 * 0.45
