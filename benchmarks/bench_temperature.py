"""Extension benchmark: the leakage story across temperature.

The paper's 20x HVT leakage advantage is a room-temperature number;
leakage-dominated designs are signed off hot.  This benchmark re-runs
the cell leakage and hold-margin comparison from -40C to 125C and
reports how the LVT/HVT gap and the margins move.
"""

from repro.analysis.tables import render_dict_table
from repro.cell import SRAM6TCell, cell_leakage_power, hold_snm
from repro.devices import celsius, library_at_temperature

TEMPERATURES_C = (-40, 25, 85, 125)


def bench_temperature_sweep(benchmark, paper_session, report_writer):
    library = paper_session.library
    vdd = library.vdd

    def run():
        rows = []
        for t_c in TEMPERATURES_C:
            lib_t = library_at_temperature(library, celsius(t_c))
            lvt = SRAM6TCell.from_library(lib_t, "lvt")
            hvt = SRAM6TCell.from_library(lib_t, "hvt")
            leak_lvt = cell_leakage_power(lvt, vdd)
            leak_hvt = cell_leakage_power(hvt, vdd)
            rows.append({
                "T_C": t_c,
                "leak_lvt_nW": leak_lvt * 1e9,
                "leak_hvt_nW": leak_hvt * 1e9,
                "ratio": leak_lvt / leak_hvt,
                "HSNM_hvt_mV": hold_snm(hvt, vdd) * 1e3,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_writer(
        "temperature",
        render_dict_table(rows, title="Cell leakage/margins vs "
                                      "temperature"),
    )

    leaks_hvt = [row["leak_hvt_nW"] for row in rows]
    ratios = [row["ratio"] for row in rows]
    margins = [row["HSNM_hvt_mV"] for row in rows]
    # Leakage rises monotonically (and steeply) with temperature.
    assert all(a < b for a, b in zip(leaks_hvt, leaks_hvt[1:]))
    assert leaks_hvt[-1] > 10.0 * leaks_hvt[1]
    # The HVT advantage narrows from the cold corner to the hot ones —
    # though only mildly, since the junction-floor component (which
    # scales identically for both flavors) dominates when hot.
    assert max(ratios[2:]) < ratios[0]
    assert ratios[-1] > 3.0
    # Hold margin erodes with temperature yet clears delta at 125C.
    assert all(a > b for a, b in zip(margins, margins[1:]))
    assert margins[-1] > 0.35 * vdd * 1e3 * 0.8
