"""Figure 7 benchmark: delay (a), energy (b), EDP (c) of the four array
configurations across 128B..16KB, plus the BL-vs-total delay comparison
of the HVT arrays (d).

Shape checks from the paper's discussion: HVT-M1 is the slowest config
(low read current, no negative Gnd); the negative-Gnd assist cuts the
HVT BL delay by ~3.3x and the total delay by ~1.8x on average; HVT
arrays use far less energy at large capacities (leakage dominance); and
every metric grows monotonically with capacity.
"""

from repro.analysis import CAPACITIES_BYTES, optimize_all


def bench_fig7(benchmark, paper_session, report_writer):
    sweep = benchmark.pedantic(
        optimize_all, args=(paper_session,), rounds=1, iterations=1,
    )
    report_writer("fig7_array_sweep", sweep.fig7_report())

    delay = sweep.series("delay")
    energy = sweep.series("energy")
    edp = sweep.series("edp")

    for capacity in CAPACITIES_BYTES:
        # (a) HVT-M1 is the slowest configuration at every capacity.
        slowest = max(delay[capacity], key=delay[capacity].get)
        assert slowest == "6T-HVT-M1"
        # (b) at >=1KB the HVT arrays use less energy than both LVT ones.
        if capacity >= 1024:
            assert energy[capacity]["6T-HVT-M2"] < energy[capacity]["6T-LVT-M2"]
            assert energy[capacity]["6T-HVT-M1"] < energy[capacity]["6T-LVT-M1"]
            # (c) and win on EDP.
            assert edp[capacity]["6T-HVT-M2"] < edp[capacity]["6T-LVT-M2"]

    # Metrics grow monotonically with capacity for every configuration.
    for series in (delay, energy, edp):
        for label in series[CAPACITIES_BYTES[0]]:
            values = [series[c][label] for c in CAPACITIES_BYTES]
            assert all(a < b for a, b in zip(values, values[1:]))

    # (d) negative Gnd slashes the HVT bitline delay.
    stats = sweep.headline()
    assert stats.bl_delay_reduction > 2.0
    assert stats.total_delay_reduction > 1.2
