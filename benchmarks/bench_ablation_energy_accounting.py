"""Ablation: worst-case-column vs all-columns energy accounting.

The paper's Table 3 books the bitline/precharge energy of a single
worst-case column per access.  Physically, asserting a wordline
disturbs *every* column's bitline, and all W accessed columns sense or
write.  This ablation runs the optimizer under both accountings and
checks which conclusions survive.  Finding: the HVT EDP win *shrinks
substantially* under all-columns accounting (at 16KB from ~74% to
~11%), because the per-access dynamic bitline energy of hundreds of
columns dilutes the leakage advantage driving the paper's headline —
the headline magnitudes are tied to Table 3's worst-case-column
energy accounting.
"""

from repro.analysis import Session, optimize_all
from repro.analysis.tables import render_dict_table
from repro.array import ArrayConfig

from conftest import CACHE_PATH


def bench_energy_accounting_ablation(benchmark, paper_session,
                                     report_writer):
    def run():
        full_session = Session.create(
            cache_path=CACHE_PATH, voltage_mode="paper",
            config=ArrayConfig(count_all_columns=True),
        )
        return optimize_all(paper_session), optimize_all(full_session)

    table3_sweep, allcols_sweep = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )
    rows = []
    for capacity in (1024, 4096, 16384):
        t3 = table3_sweep.get(capacity, "hvt", "M2").metrics
        ac = allcols_sweep.get(capacity, "hvt", "M2").metrics
        rows.append({
            "capacity_B": capacity,
            "E_table3_fJ": t3.e_total * 1e15,
            "E_allcols_fJ": ac.e_total * 1e15,
            "ratio": ac.e_total / t3.e_total,
            "leakfrac_table3": t3.leakage_fraction,
            "leakfrac_allcols": ac.leakage_fraction,
        })
    report_writer(
        "ablation_energy_accounting",
        render_dict_table(rows, title="Energy-accounting ablation (HVT-M2)"),
    )

    stats_t3 = table3_sweep.headline()
    stats_ac = allcols_sweep.headline()
    # All-columns accounting raises energy, never lowers it.
    for row in rows:
        assert row["ratio"] >= 1.0
    # The HVT advantage shrinks under all-columns accounting but stays
    # positive; the paper's headline magnitude needs Table 3's
    # worst-case-column accounting.
    assert stats_t3.gain_16kb > 0.5
    assert stats_ac.gain_16kb > 0.0
    assert stats_ac.gain_16kb < stats_t3.gain_16kb
