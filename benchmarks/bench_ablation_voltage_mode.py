"""Ablation: paper rail presets vs self-measured minimum rails.

The paper pre-sets V_DDC / V_WL to the minimum levels its SPICE runs
need for yield (640/490 mV LVT, 550/540 mV HVT).  Our cell needs
slightly different minima (the compact model is not their PTM deck);
this ablation runs the full optimization under both policies and shows
which headline conclusions are robust to that choice:

* the EDP win of HVT-M2 holds in both modes (it is leakage-driven);
* the *delay penalty sign* is mode-sensitive: under measured rails our
  LVT cell's RSNM declines with negative V_SSC, which caps the LVT-M2
  negative-Gnd level and can make HVT-M2 the faster array.
"""

from repro.analysis import optimize_all
from repro.analysis.tables import render_dict_table


def bench_voltage_mode_ablation(benchmark, paper_session, measured_session,
                                report_writer):
    def run_both():
        return (optimize_all(paper_session),
                optimize_all(measured_session))

    paper_sweep, measured_sweep = benchmark.pedantic(
        run_both, rounds=1, iterations=1,
    )
    paper_stats = paper_sweep.headline()
    measured_stats = measured_sweep.headline()
    rows = []
    for name, get in (
        ("avg EDP gain >=1KB (%)", lambda s: s.avg_edp_gain_large * 100),
        ("avg delay penalty >=1KB (%)",
         lambda s: s.avg_delay_penalty_large * 100),
        ("16KB EDP gain (%)", lambda s: s.gain_16kb * 100),
        ("16KB delay penalty (%)", lambda s: s.penalty_16kb * 100),
        ("BL delay reduction (x)", lambda s: s.bl_delay_reduction),
    ):
        rows.append({
            "metric": name,
            "paper_rails": get(paper_stats),
            "measured_rails": get(measured_stats),
        })
    report_writer(
        "ablation_voltage_mode",
        render_dict_table(rows, title="Voltage-mode ablation"),
    )

    # The leakage-driven EDP win is robust to the rail policy.
    assert paper_stats.avg_edp_gain_large > 0.4
    assert measured_stats.avg_edp_gain_large > 0.4
    assert paper_stats.gain_16kb > 0.65
    assert measured_stats.gain_16kb > 0.65
    # The delay penalty is positive only under the paper's rails.
    assert paper_stats.avg_delay_penalty_large > 0.0
