"""CI gate: fail when the fused search engine regresses against the
committed ``BENCH_search.json`` baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_search_regression.py

The gate re-times the baseline's tracked configuration (one 16KB/HVT/M2
exhaustive search) on the current machine, then normalizes the measured
fused time by the vectorized engine's machine factor — the ratio of
the vectorized time measured *now* to the vectorized time recorded in
the baseline.  Because both engines execute the same arithmetic, that
factor cancels out hardware differences between the committed baseline
and the CI runner, leaving only genuine code regressions.

The policy-batched (``optimize_many``), bound-and-prune (``pruned``)
and yield-target-constraint paths ride the same machine factor as
extra legs; the pruned leg also re-checks that pruning leaves the
16KB/HVT/M2 argmin bit-identical to the fused engine's before timing
it, and the yield leg re-checks that a non-correcting code reproduces
the fixed-delta argmin exactly.  Legs whose baseline fields are
missing (older baselines) skip gracefully.

Exit codes: 0 = pass (or graceful skip), 1 = fused regression beyond
the threshold.  Skips cleanly when the baseline is missing or predates
the fused engine (no ``single.fused_seconds`` field).
"""

from __future__ import annotations

import json
import os
import sys
import time

#: Fail the gate when the normalized fused time regresses beyond this.
THRESHOLD = 0.25

#: Repetitions per engine; best-of keeps scheduler noise out.
REPEATS = 5

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_search.json")
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")


def _skip(message):
    print("search-regression gate: SKIP — %s" % message)
    return 0


def _time_engine(session, engine):
    from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy

    optimizer = ExhaustiveOptimizer(
        session.model("hvt"), DesignSpace(), session.constraint("hvt")
    )
    policy = make_policy("M2", session.yield_levels("hvt"))
    optimizer.optimize(16384 * 8, policy, engine=engine)  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        optimizer.optimize(16384 * 8, policy, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _time_many(session):
    """Best-of wall time of the policy-batched 16KB/HVT dispatch [s]."""
    from repro.analysis.experiments import METHODS
    from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy

    optimizer = ExhaustiveOptimizer(
        session.model("hvt"), DesignSpace(), session.constraint("hvt")
    )
    levels = session.yield_levels("hvt")
    policies = [make_policy(method, levels) for method in METHODS]
    optimizer.optimize_many(16384 * 8, policies)  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        optimizer.optimize_many(16384 * 8, policies)
        best = min(best, time.perf_counter() - start)
    return best


def main():
    try:
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        return _skip("no readable baseline at %s (%s)"
                     % (BASELINE_PATH, exc))
    single = baseline.get("single", {})
    base_fused = single.get("fused_seconds")
    base_vec = single.get("vectorized_seconds")
    if not base_fused or not base_vec:
        return _skip("baseline predates the fused engine "
                     "(no single.fused_seconds)")

    from repro.analysis.experiments import Session

    session = Session.create(cache_path=CACHE_PATH, voltage_mode="paper")
    now_vec = _time_engine(session, "vectorized")
    now_fused = _time_engine(session, "fused")

    # Hardware normalization: how much faster/slower this machine runs
    # the identical vectorized arithmetic than the baseline machine did.
    machine_factor = now_vec / base_vec
    expected_fused = base_fused * machine_factor
    regression = now_fused / expected_fused - 1.0

    print("search-regression gate (%s)" % single.get("config", "?"))
    print("  baseline : vectorized %.2f ms, fused %.2f ms"
          % (base_vec * 1e3, base_fused * 1e3))
    print("  measured : vectorized %.2f ms, fused %.2f ms"
          % (now_vec * 1e3, now_fused * 1e3))
    print("  machine factor %.2fx -> expected fused %.2f ms, "
          "regression %+.1f%% (threshold +%.0f%%)"
          % (machine_factor, expected_fused * 1e3,
             regression * 100.0, THRESHOLD * 100.0))

    failed = regression > THRESHOLD

    # The policy-batched path rides the same gate (same machine factor:
    # identical arithmetic, just more of it per dispatch).  Baselines
    # predating optimize_many skip this leg only.
    base_many = single.get("fused_many_seconds")
    if base_many:
        now_many = _time_many(session)
        expected_many = base_many * machine_factor
        many_regression = now_many / expected_many - 1.0
        print("  policy-batched: baseline %.2f ms, measured %.2f ms, "
              "regression %+.1f%% (threshold +%.0f%%)"
              % (base_many * 1e3, now_many * 1e3,
                 many_regression * 100.0, THRESHOLD * 100.0))
        failed = failed or many_regression > THRESHOLD
    else:
        print("  policy-batched: baseline predates optimize_many — "
              "leg skipped")

    # The bound-and-prune engine rides the same machine factor.  Before
    # timing it, its answer must equal the fused engine's on the gate
    # cell — a wrong prune is a correctness bug, not a perf regression.
    base_pruned = single.get("pruned_seconds")
    if base_pruned:
        from repro.opt import DesignSpace, ExhaustiveOptimizer, \
            make_policy

        optimizer = ExhaustiveOptimizer(
            session.model("hvt"), DesignSpace(),
            session.constraint("hvt"))
        policy = make_policy("M2", session.yield_levels("hvt"))
        fused_ref = optimizer.optimize(16384 * 8, policy, engine="fused")
        pruned_ref = optimizer.optimize(16384 * 8, policy,
                                        engine="pruned")
        if (pruned_ref.design != fused_ref.design
                or pruned_ref.metrics.edp != fused_ref.metrics.edp):
            print("  bound-and-prune: argmin DIVERGED from fused "
                  "(design %s vs %s)"
                  % (pruned_ref.design, fused_ref.design))
            failed = True
        now_pruned = _time_engine(session, "pruned")
        expected_pruned = base_pruned * machine_factor
        pruned_regression = now_pruned / expected_pruned - 1.0
        print("  bound-and-prune: baseline %.2f ms, measured %.2f ms, "
              "regression %+.1f%% (threshold +%.0f%%)"
              % (base_pruned * 1e3, now_pruned * 1e3,
                 pruned_regression * 100.0, THRESHOLD * 100.0))
        failed = failed or pruned_regression > THRESHOLD
    else:
        print("  bound-and-prune: baseline predates the pruned engine — "
              "leg skipped")

    # The yield-target constraint rides the same machine factor (its
    # steady-state cost is the pruned search plus memoized sigma
    # lookups).  Before timing it, the non-correcting code must leave
    # the gate cell's argmin bit-identical to the fixed-delta search —
    # a relaxation with code="none" is a correctness bug.
    base_yield = single.get("yield_constraint_seconds")
    if base_yield:
        from repro.opt import DesignSpace, ExhaustiveOptimizer, \
            make_policy
        from repro.opt.constraints import YieldTargetConstraint

        base_constraint = session.constraint("hvt")
        policy = make_policy("M2", session.yield_levels("hvt"))
        fixed_ref = ExhaustiveOptimizer(
            session.model("hvt"), DesignSpace(), base_constraint
        ).optimize(16384 * 8, policy, engine="pruned")

        def yield_constraint(code):
            constraint = YieldTargetConstraint(
                library=session.library, flavor="hvt",
                delta=session.delta, y_target=0.9, code=code,
                capacity_bits=16384 * 8,
                word_bits=session.config.word_bits,
                trust_fixed_rails=base_constraint.trust_fixed_rails,
                flip_lookup=base_constraint.flip_lookup,
            )
            constraint.seed_margin_memo(
                base_constraint.export_margin_memo())
            return constraint

        none_ref = ExhaustiveOptimizer(
            session.model("hvt"), DesignSpace(), yield_constraint("none")
        ).optimize(16384 * 8, policy, engine="pruned")
        if (none_ref.design != fixed_ref.design
                or none_ref.metrics.edp != fixed_ref.metrics.edp):
            print("  yield-constraint: code='none' DIVERGED from the "
                  "fixed-delta search (design %s vs %s)"
                  % (none_ref.design, fixed_ref.design))
            failed = True

        optimizer = ExhaustiveOptimizer(
            session.model("hvt"), DesignSpace(),
            yield_constraint("secded"))
        optimizer.optimize(16384 * 8, policy, engine="pruned")  # warm MC
        now_yield = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            optimizer.optimize(16384 * 8, policy, engine="pruned")
            now_yield = min(now_yield, time.perf_counter() - start)
        expected_yield = base_yield * machine_factor
        yield_regression = now_yield / expected_yield - 1.0
        print("  yield-constraint: baseline %.2f ms, measured %.2f ms, "
              "regression %+.1f%% (threshold +%.0f%%)"
              % (base_yield * 1e3, now_yield * 1e3,
                 yield_regression * 100.0, THRESHOLD * 100.0))
        failed = failed or yield_regression > THRESHOLD
    else:
        print("  yield-constraint: baseline predates the yield leg — "
              "leg skipped")

    if failed:
        print("search-regression gate: FAIL")
        return 1
    print("search-regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
