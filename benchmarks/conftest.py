"""Shared fixtures for the benchmark suite.

Every benchmark reuses one characterization cache (repo root,
``.repro_cache.json``): the first cold run spends a few minutes in the
circuit simulator, every later run is fast.  Reports are printed (run
pytest with ``-s`` to see them live) and also written under
``benchmarks/output/``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import Session

_HERE = os.path.dirname(os.path.abspath(__file__))
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")
OUTPUT_DIR = os.path.join(_HERE, "output")


@pytest.fixture(scope="session")
def paper_session():
    """Session with the paper's V_DDC/V_WL rail presets (default mode)."""
    return Session.create(cache_path=CACHE_PATH, voltage_mode="paper")


@pytest.fixture(scope="session")
def measured_session():
    """Session with self-measured minimum rail levels."""
    return Session.create(cache_path=CACHE_PATH, voltage_mode="measured")


@pytest.fixture(scope="session")
def report_writer():
    """Callable saving a report to benchmarks/output/<name>.txt."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    def save(name, text):
        path = os.path.join(OUTPUT_DIR, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)
        return path

    return save
