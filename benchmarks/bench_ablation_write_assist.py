"""Ablation: WL overdrive vs negative BL as the write assist.

The paper compares the two write assists at the cell level (Fig. 5) and
adopts WLOD because it is "slightly more effective in improving the
WM"; it never quantifies the alternative at the *array* level.  This
ablation does: it runs the full co-optimization for the 6T-HVT array
under the adopted WLOD policy and under a negative-BL policy (wordline
at nominal Vdd, the write-low bitline driven to the minimum level whose
WM meets delta), and compares the resulting EDP.

Expected trade-off: negative BL removes the WL-overdrive swing but adds
a full extra bitline swing (Vdd - V_BL) on every write plus its
precharge restore — the bitline is the biggest capacitance in the
array, so the WLOD choice should win on energy at equal yield,
vindicating the paper's selection for a second, independent reason.
"""

import math

from repro.analysis import optimize_all
from repro.analysis.tables import render_dict_table
from repro.opt import DesignSpace, ExhaustiveOptimizer, policy_m2_negative_bl

CAPACITIES = (1024, 4096, 16384)


def minimum_v_bl(char, delta, vdd):
    """Least-negative characterized V_BL with WM(vdd, v_bl) >= delta."""
    lut = char.v_wl_flip_vs_vbl
    for v_bl in sorted(lut.xs, reverse=True):  # 0 first, then deeper
        if v_bl >= 0:
            continue
        if vdd - lut(float(v_bl)) >= delta:
            return float(v_bl)
    raise AssertionError("no characterized V_BL meets the WM floor")


def bench_write_assist_ablation(benchmark, paper_session, report_writer):
    session = paper_session
    vdd = session.library.vdd
    char = session.chars["hvt"]
    v_bl = minimum_v_bl(char, session.delta, vdd)

    def run():
        wlod_sweep = optimize_all(session, capacities=CAPACITIES)
        nbl_policy = policy_m2_negative_bl(
            session.yield_levels("hvt"), vdd, v_bl
        )
        optimizer = ExhaustiveOptimizer(
            session.model("hvt"), DesignSpace(), session.constraint("hvt")
        )
        nbl = {
            capacity: optimizer.optimize(capacity * 8, nbl_policy)
            for capacity in CAPACITIES
        }
        return wlod_sweep, nbl

    wlod_sweep, nbl = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for capacity in CAPACITIES:
        wlod = wlod_sweep.get(capacity, "hvt", "M2").metrics
        alt = nbl[capacity].metrics
        rows.append({
            "capacity_B": capacity,
            "EDP_wlod": wlod.edp * 1e24,
            "EDP_negbl": alt.edp * 1e24,
            "negbl_overhead_pct":
                (alt.edp / wlod.edp - 1.0) * 100.0,
            "D_wlod_ns": wlod.d_array * 1e9,
            "D_negbl_ns": alt.d_array * 1e9,
            "E_wlod_fJ": wlod.e_total * 1e15,
            "E_negbl_fJ": alt.e_total * 1e15,
        })
    report = render_dict_table(
        rows,
        title="Write-assist ablation (HVT, M2 rails, V_BL=%.0f mV)"
        % (v_bl * 1e3),
    )
    report_writer("ablation_write_assist", report)

    # The negative-BL level that meets delta is near the paper's -100 mV.
    assert -0.16 <= v_bl <= -0.05
    for row in rows:
        # Both policies produce feasible, finite designs...
        assert math.isfinite(row["EDP_negbl"])
        # ... and WLOD is never substantially worse: the paper's choice
        # holds up at the array level.
        assert row["EDP_wlod"] <= row["EDP_negbl"] * 1.05
