"""Bit-identity of the batched cell engine against the scalar reference.

The batched Monte Carlo and LUT-characterization paths must reproduce
the retained loop engine *bitwise* — same seeds, same draws, same
per-element operation sequence — so the engine choice can never change
a result, only its runtime.
"""

import numpy as np
import pytest

from repro.cell.montecarlo import (
    batched_cell,
    run_cell_montecarlo,
    sample_cells,
    sample_shift_matrix,
)
from repro.cell.read_current import read_current_grid
from repro.cell.sram6t import TRANSISTOR_ROLES
from repro.cell.write import flip_wordline_voltage, flip_wordline_voltage_batch
from repro.cell.write_delay import write_delay_vs_wordline

#: Small-but-meaningful Monte Carlo settings (coarse bisections keep the
#: scalar reference affordable; bit-identity is resolution-independent).
MC_KWARGS = dict(
    n_samples=3,
    metrics=("hsnm", "rsnm", "wm"),
    wm_resolution=0.01,
    snm_points=21,
)


@pytest.mark.parametrize("flavor", ["lvt", "hvt"])
@pytest.mark.parametrize("seed", [0, 11])
def test_engines_bit_identical(library, lvt_cell, hvt_cell, flavor, seed):
    cell = lvt_cell if flavor == "lvt" else hvt_cell
    batched = run_cell_montecarlo(cell, seed=seed, engine="batched",
                                  **MC_KWARGS)
    loop = run_cell_montecarlo(cell, seed=seed, engine="loop", **MC_KWARGS)
    for name in MC_KWARGS["metrics"]:
        assert np.array_equal(
            batched.metric(name).values, loop.metric(name).values
        ), "%s/%d: %s samples differ between engines" % (flavor, seed, name)


def test_unknown_engine_rejected(hvt_cell):
    with pytest.raises(ValueError):
        run_cell_montecarlo(hvt_cell, n_samples=1, engine="numpy")


def test_engines_share_one_seeded_draw(hvt_cell):
    """Both engines consume the same shift matrix: the loop shim's k-th
    cell carries exactly row k of the matrix the batched cell embeds."""
    shifts = sample_shift_matrix(4, seed=5)
    assert np.array_equal(shifts, sample_shift_matrix(4, seed=5))
    batched = batched_cell(hvt_cell, shifts)
    cells = list(sample_cells(hvt_cell, 4, seed=5))
    for column, role in enumerate(TRANSISTOR_ROLES):
        expected = np.maximum(
            hvt_cell.params(role).vt + shifts[:, column], 1e-3
        )
        assert np.array_equal(batched.params(role).vt[:, 0], expected)
        for k, cell in enumerate(cells):
            assert cell.params(role).vt == expected[k]


def test_read_current_grid_engines_match(hvt_cell):
    v_ddc = np.asarray([0.45, 0.5, 0.55, 0.6])
    v_ssc = np.asarray([-0.1, -0.05, 0.0])
    batched = read_current_grid(hvt_cell, v_ddc, v_ssc, engine="batched")
    loop = read_current_grid(hvt_cell, v_ddc, v_ssc, engine="loop")
    assert batched.shape == (4, 3)
    assert np.array_equal(batched, loop)
    with pytest.raises(ValueError):
        read_current_grid(hvt_cell, v_ddc, v_ssc, engine="numpy")


def test_write_delay_sweep_engines_match(hvt_cell, library):
    v_wl = [0.45, 0.55, 0.65]
    batched = write_delay_vs_wordline(hvt_cell, v_wl, vdd=library.vdd,
                                      engine="batched")
    loop = write_delay_vs_wordline(hvt_cell, v_wl, vdd=library.vdd,
                                   engine="loop")
    assert np.array_equal(np.asarray(batched), np.asarray(loop))
    with pytest.raises(ValueError):
        write_delay_vs_wordline(hvt_cell, v_wl, engine="numpy")


def test_flip_voltage_batch_matches_scalar_over_bl_levels(hvt_cell, library):
    """The negative-BL characterization sweep: per-lane bitline levels
    through one batched bisection equal point-by-point scalar calls."""
    v_bl = np.asarray([-0.15, -0.05, 0.0])
    batched = flip_wordline_voltage_batch(
        hvt_cell, len(v_bl), vdd=library.vdd,
        v_bl_low=v_bl.reshape(-1, 1), resolution=0.01,
    )
    scalar = [
        flip_wordline_voltage(hvt_cell, vdd=library.vdd,
                              v_bl_low=float(level), resolution=0.01)
        for level in v_bl
    ]
    assert np.array_equal(batched, np.asarray(scalar))


def test_multi_coalesced_runs_bit_identical_to_separate(hvt_cell, library):
    """The service's cross-request coalescing: several (n, seed) draws
    merged into one batched solve must equal separate runs bitwise."""
    from repro.cell.montecarlo import run_cell_montecarlo_multi

    specs = [(3, 0), (2, 7), (4, 11)]
    kwargs = dict(vdd=library.vdd, metrics=("hsnm", "rsnm", "wm"),
                  wm_resolution=0.01, snm_points=21)
    merged = run_cell_montecarlo_multi(hvt_cell, specs, **kwargs)
    assert len(merged) == len(specs)
    for (n, seed), result in zip(specs, merged):
        separate = run_cell_montecarlo(hvt_cell, n_samples=n, seed=seed,
                                       engine="batched", **kwargs)
        assert result.n_samples == n
        for name in kwargs["metrics"]:
            assert np.array_equal(result.metric(name).values,
                                  separate.metric(name).values)


def test_multi_single_spec_matches_plain_run(hvt_cell, library):
    from repro.cell.montecarlo import run_cell_montecarlo_multi

    kwargs = dict(vdd=library.vdd, metrics=("hsnm",), snm_points=21)
    (only,) = run_cell_montecarlo_multi(hvt_cell, [(3, 5)], **kwargs)
    plain = run_cell_montecarlo(hvt_cell, n_samples=3, seed=5,
                                engine="batched", **kwargs)
    assert np.array_equal(only.metric("hsnm").values,
                          plain.metric("hsnm").values)
