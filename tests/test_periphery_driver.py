"""Superbuffer model, validated against its transistor-level netlist."""

import pytest

from repro.periphery import (
    STAGE_FINS,
    SuperbufferModel,
    build_superbuffer_circuit,
    scaled_gate,
)
from repro.spice import step, transient


def test_stage_fins_taper():
    assert STAGE_FINS == (1, 3, 9, 27)


def test_scaled_gate_algebra(hvt_char):
    inv = hvt_char.decoder.inverter
    big = scaled_gate(inv, 3)
    assert big.drive_resistance == pytest.approx(inv.drive_resistance / 3)
    assert big.c_input == pytest.approx(3 * inv.c_input)
    assert big.e0 == pytest.approx(3 * inv.e0)
    assert big.d0 == inv.d0


def test_input_capacitance_is_unit_inverter(hvt_char):
    driver = hvt_char.driver
    assert driver.input_capacitance == pytest.approx(
        driver.unit_inverter.c_input
    )


def test_first_three_delay_positive_and_balanced(hvt_char):
    driver = hvt_char.driver
    total = driver.first_three_delay
    assert total > 0
    # Equal-taper stages: each contributes about a third.
    inv = driver.unit_inverter
    stage1 = inv.delay(3 * inv.c_input)
    assert total == pytest.approx(3 * stage1, rel=0.05)


def test_model_against_simulated_superbuffer(library, hvt_char):
    """The analytic first-three-stages delay must track a full
    transistor-level simulation of the 1-3-9-27 chain."""
    vdd = library.vdd
    circuit = build_superbuffer_circuit(
        library, load_cap=10e-15,
        input_value=step(1e-12, 0.0, vdd, 0.1e-12),
    )
    result = transient(circuit, 120e-12, 5e-14)
    half = 0.5 * vdd
    t_in = result.node("n0").cross(half, "rise")
    t_n3 = result.node("n3").cross(half)
    simulated = t_n3 - t_in
    model = hvt_char.driver.first_three_delay
    assert model == pytest.approx(simulated, rel=0.45)


def test_first_three_energy_positive(hvt_char):
    assert hvt_char.driver.first_three_energy > 0


def test_last_stage_fins(hvt_char):
    assert hvt_char.driver.last_stage_device_fins() == 27
