"""Pelgrom variation model and Monte Carlo shift sampling."""

import math

import numpy as np
import pytest

from repro.devices import (
    DeviceLibrary,
    VariationModel,
    apply_shifts,
    sigma_vt_single_fin,
)
from repro.devices.variation import A_VT_DEFAULT, FIN_AREA_DEFAULT


def test_sigma_vt_pelgrom_law():
    expected = A_VT_DEFAULT / math.sqrt(FIN_AREA_DEFAULT)
    assert sigma_vt_single_fin() == pytest.approx(expected)
    # A 7nm single fin should land in the tens-of-mV range.
    assert 0.01 < expected < 0.1


def test_sigma_shrinks_with_fin_count():
    model = VariationModel(sigma_vt=0.030)
    assert model.sigma_for(4) == pytest.approx(0.015)
    assert model.sigma_for(1) == pytest.approx(0.030)


def test_sigma_for_rejects_bad_fins():
    with pytest.raises(ValueError):
        VariationModel().sigma_for(0)


def test_negative_sigma_rejected():
    with pytest.raises(ValueError):
        VariationModel(sigma_vt=-0.01)


def test_sample_shapes():
    model = VariationModel(sigma_vt=0.025)
    rng = np.random.default_rng(0)
    shifts = model.sample_shifts(6, 100, rng)
    assert shifts.shape == (100, 6)


def test_sampling_is_reproducible_from_seed():
    model = VariationModel(sigma_vt=0.025)
    a = model.sample_shifts(6, 10, np.random.default_rng(42))
    b = model.sample_shifts(6, 10, np.random.default_rng(42))
    assert np.array_equal(a, b)


def test_sample_statistics():
    model = VariationModel(sigma_vt=0.025)
    shifts = model.sample_shifts(2, 20000, np.random.default_rng(1))
    assert abs(float(np.mean(shifts))) < 0.001
    assert float(np.std(shifts)) == pytest.approx(0.025, rel=0.05)


def test_apply_shifts():
    library = DeviceLibrary.default_7nm()
    params = [library.nfet_lvt, library.pfet_lvt]
    shifted = apply_shifts(params, [0.010, -0.020])
    assert shifted[0].vt == pytest.approx(library.nfet_lvt.vt + 0.010)
    assert shifted[1].vt == pytest.approx(library.pfet_lvt.vt - 0.020)


def test_apply_shifts_length_mismatch():
    library = DeviceLibrary.default_7nm()
    with pytest.raises(ValueError):
        apply_shifts([library.nfet_lvt], [0.01, 0.02])


def test_apply_shift_matrix_batches_each_transistor_column():
    from repro.devices.variation import apply_shift_matrix

    library = DeviceLibrary.default_7nm()
    params = [library.nfet_lvt, library.pfet_lvt]
    matrix = np.asarray([[0.010, -0.020], [0.000, 0.030]])
    batched = apply_shift_matrix(params, matrix)
    assert [p.batch_size for p in batched] == [2, 2]
    assert np.array_equal(batched[0].vt[:, 0],
                          library.nfet_lvt.vt + matrix[:, 0])
    assert np.array_equal(batched[1].vt[:, 0],
                          library.pfet_lvt.vt + matrix[:, 1])


def test_apply_shift_matrix_shape_validation():
    from repro.devices.variation import apply_shift_matrix

    library = DeviceLibrary.default_7nm()
    with pytest.raises(ValueError):
        apply_shift_matrix([library.nfet_lvt], np.zeros(3))
    with pytest.raises(ValueError):
        apply_shift_matrix([library.nfet_lvt], np.zeros((2, 3)))
