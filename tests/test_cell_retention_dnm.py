"""Retention voltage and dynamic noise margin extensions."""

import pytest

from repro.cell import (
    cell_flips_under_pulse,
    data_retention_voltage,
    dnm_analysis,
    dynamic_noise_margin,
    retention_analysis,
)
from repro.errors import CharacterizationError

VDD = 0.45


@pytest.fixture(scope="module")
def hvt_retention(hvt_cell):
    return retention_analysis(hvt_cell, VDD)


def test_drv_matches_fig2_cliff(hvt_retention):
    """Figure 2: the hold-margin floor fails below ~250 mV."""
    assert 0.20 < hvt_retention.drv < 0.26


def test_drv_margin_is_at_the_floor(hvt_cell, hvt_retention):
    frac = hvt_retention.hsnm_at_drv / hvt_retention.drv
    assert frac == pytest.approx(0.35, abs=0.01)


def test_retention_saves_leakage(hvt_retention):
    assert hvt_retention.retention_saving > 1.5
    assert hvt_retention.leakage_at_drv < hvt_retention.leakage_nominal


def test_drv_guard_band(hvt_cell, hvt_retention):
    guarded = retention_analysis(hvt_cell, VDD, guard_band=0.05)
    assert guarded.drv == pytest.approx(hvt_retention.drv + 0.05,
                                        abs=0.005)
    assert guarded.retention_saving < hvt_retention.retention_saving


def test_impossible_margin_raises(hvt_cell):
    with pytest.raises(CharacterizationError):
        data_retention_voltage(hvt_cell, margin_fraction=0.49,
                               v_max=0.50)


def test_small_pulse_does_not_flip(hvt_cell):
    assert not cell_flips_under_pulse(hvt_cell, 0.10, 5e-12, vdd=VDD)


def test_large_long_pulse_flips(hvt_cell):
    assert cell_flips_under_pulse(hvt_cell, 1.0, 20e-12, vdd=VDD)


def test_dnm_exceeds_static_snm(hvt_cell):
    result = dnm_analysis(hvt_cell, duration=5e-12, vdd=VDD)
    assert result.critical_amplitude > result.static_snm
    assert result.dynamic_gain > 1.2


def test_dnm_falls_with_pulse_duration(hvt_cell):
    short = dynamic_noise_margin(hvt_cell, 2e-12, vdd=VDD,
                                 resolution=0.02)
    long = dynamic_noise_margin(hvt_cell, 15e-12, vdd=VDD,
                                resolution=0.02)
    assert short > long
