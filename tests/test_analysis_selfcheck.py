"""The reproduction self-check."""

from repro.analysis import run_selfcheck
from repro.analysis.selfcheck import Check, SelfCheckResult


def test_check_window_logic():
    assert Check("x", 1.0, 0.5, 1.5).passed
    assert not Check("x", 2.0, 0.5, 1.5).passed


def test_selfcheck_result_aggregation():
    result = SelfCheckResult(checks=[
        Check("a", 1.0, 0.0, 2.0),
        Check("b", 5.0, 0.0, 2.0),
    ])
    assert not result.all_passed
    assert result.n_failed == 1
    assert "FAILED" in result.report()


def test_full_selfcheck_passes(paper_session):
    """The shipped calibration must clear every gate."""
    result = run_selfcheck(paper_session)
    assert result.all_passed, result.report()
    assert "ALL CHECKS PASSED" in result.report()
    assert len(result.checks) >= 10
