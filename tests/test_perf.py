"""The perf telemetry registry: timers, counters, merge, report."""

import pytest

from repro.perf import PerfRegistry, count, get_registry, timed


def test_timer_accumulates():
    reg = PerfRegistry()
    for _ in range(3):
        with reg.timer("phase"):
            pass
    stat = reg.timers["phase"]
    assert stat.count == 3
    assert stat.total >= 0.0
    assert stat.min <= stat.mean <= stat.max


def test_timer_records_on_exception():
    reg = PerfRegistry()
    with pytest.raises(RuntimeError):
        with reg.timer("boom"):
            raise RuntimeError("x")
    assert reg.timers["boom"].count == 1


def test_counters():
    reg = PerfRegistry()
    reg.count("evals", 10)
    reg.count("evals", 5)
    assert reg.counters["evals"] == 15


def test_snapshot_merge_round_trip():
    a = PerfRegistry()
    with a.timer("t"):
        pass
    a.count("c", 2)
    b = PerfRegistry()
    with b.timer("t"):
        pass
    b.count("c", 3)
    a.merge(b.snapshot())
    assert a.timers["t"].count == 2
    assert a.counters["c"] == 5


def test_snapshot_is_plain_data():
    import json

    reg = PerfRegistry()
    with reg.timer("t"):
        pass
    reg.count("c")
    json.dumps(reg.snapshot())  # must not raise


def test_reset():
    reg = PerfRegistry()
    reg.count("c")
    with reg.timer("t"):
        pass
    reg.reset()
    assert not reg.timers and not reg.counters


def test_report_renders():
    reg = PerfRegistry()
    assert "no telemetry" in reg.report()
    with reg.timer("optimizer.search"):
        pass
    reg.count("optimizer.evaluations", 1000)
    text = reg.report()
    assert "optimizer.search" in text
    assert "optimizer.evaluations" in text


def test_global_registry_helpers():
    reg = get_registry()
    before = reg.counters.get("test.helper", 0)
    count("test.helper", 4)
    assert reg.counters["test.helper"] == before + 4
    with timed("test.helper.timer"):
        pass
    assert reg.timers["test.helper.timer"].count >= 1


def test_to_json_from_json_round_trip():
    reg = PerfRegistry()
    with reg.timer("t"):
        pass
    reg.count("c", 7)
    clone = PerfRegistry.from_json(reg.to_json())
    assert clone.counters == {"c": 7}
    assert clone.timers["t"].count == 1
    assert clone.timers["t"].total == reg.timers["t"].total
    assert clone.timers["t"].min == reg.timers["t"].min
    assert clone.timers["t"].max == reg.timers["t"].max


def test_to_json_is_strict_json():
    """A zero-count timer's placeholder min is inf in a live registry;
    the wire format must still be strict JSON (no Infinity token)."""
    import json

    reg = PerfRegistry()
    reg.merge({"timers": {"idle": {"count": 0, "total": 0.0,
                                   "min": float("inf"), "max": 0.0}},
               "counters": {}})
    text = reg.to_json()
    assert "Infinity" not in text
    data = json.loads(text)  # strict decode must not raise
    assert data["timers"]["idle"]["min"] == 0.0


def test_merge_ignores_zero_count_min_max():
    reg = PerfRegistry()
    reg.add_time("t", 0.5)
    reg.merge({"timers": {"t": {"count": 0, "total": 0.0,
                                "min": 0.0, "max": 0.0}},
               "counters": {}})
    assert reg.timers["t"].min == 0.5
    assert reg.timers["t"].max == 0.5
    assert reg.timers["t"].count == 1


def test_report_renders_zero_count_timer():
    reg = PerfRegistry.from_json(
        '{"counters": {}, "timers": {"idle": {"count": 0, "max": 0.0, '
        '"min": 0.0, "total": 0.0}}}'
    )
    text = reg.report()
    assert "idle" in text
    assert "inf" not in text and "nan" not in text


def test_worker_snapshot_hand_off():
    """The process-boundary pattern the service uses: a worker's delta
    travels as JSON text and folds into the parent's registry."""
    worker = PerfRegistry()
    with worker.timer("engine.solve"):
        pass
    worker.count("engine.items", 3)
    wire = worker.to_json()

    parent = PerfRegistry()
    parent.count("engine.items", 1)
    parent.merge(PerfRegistry.from_json(wire).snapshot())
    assert parent.counters["engine.items"] == 4
    assert parent.timers["engine.solve"].count == 1


def test_optimizer_records_telemetry(paper_session):
    from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy

    reg = get_registry()
    before = reg.counters.get("optimizer.evaluations", 0)
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"),
        DesignSpace(n_pre_max=5, n_wr_max=4),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    result = optimizer.optimize(1024 * 8, policy)
    assert reg.counters["optimizer.evaluations"] == (
        before + result.n_evaluated
    )
    assert reg.timers["optimizer.search.vectorized"].count >= 1
