"""SRAM6TCell structure, overrides, and netlist construction."""

import pytest

from repro.cell import TRANSISTOR_ROLES, CellBias, SRAM6TCell
from repro.devices import DeviceLibrary

LIB = DeviceLibrary.default_7nm()


def test_from_library_roles():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    assert cell.params("pu_l").polarity == "p"
    assert cell.params("pd_r").polarity == "n"
    assert cell.params("ax_l") == LIB.nfet_hvt


def test_symmetric_by_default():
    assert SRAM6TCell.from_library(LIB, "lvt").is_symmetric


def test_overrides_break_symmetry():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    shifted = cell.with_overrides(
        {"pd_l": cell.params("pd_l").with_vt_shift(0.02)}
    )
    assert not shifted.is_symmetric
    assert shifted.params("pd_l").vt == pytest.approx(
        cell.params("pd_l").vt + 0.02
    )
    # Other transistors untouched.
    assert shifted.params("pd_r") == cell.params("pd_r")


def test_unknown_override_role_rejected():
    with pytest.raises(ValueError):
        SRAM6TCell(LIB.nfet_hvt, LIB.pfet_hvt,
                   overrides={"bogus": LIB.nfet_hvt})


def test_wrong_polarity_rejected():
    with pytest.raises(ValueError):
        SRAM6TCell(LIB.pfet_hvt, LIB.nfet_hvt)  # swapped


def test_all_params_order():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    params = cell.all_params()
    assert len(params) == 6
    assert params[0] == cell.params(TRANSISTOR_ROLES[0])


def test_build_circuit_nodes_and_elements():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    circuit = cell.build_circuit(CellBias.hold())
    circuit.compile()
    names = set(circuit.node_names)
    assert {"q", "qb", "bl", "blb", "wl", "cvdd", "cvss"} <= names
    assert len([e for e in circuit.elements]) == 11  # 5 sources + 6 FETs


def test_build_circuit_with_drive_sources():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    circuit = cell.build_circuit(CellBias.read(), drive_qb=0.2)
    assert circuit.element("vqb").value == 0.2
    with pytest.raises(Exception):
        circuit.element("vq")


def test_build_circuit_node_caps():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    circuit = cell.build_circuit(CellBias.hold(),
                                 node_caps={"q": 1e-16, "qb": 1e-16})
    assert circuit.element("c_q").capacitance == pytest.approx(1e-16)


def test_internal_node_capacitance_scale():
    cell = SRAM6TCell.from_library(LIB, "hvt")
    c_node = cell.internal_node_capacitance()
    # Three drains + two gates of single-fin devices: tenths of a fF.
    assert 0.1e-15 < c_node < 1.0e-15


def test_device_instances_single_fin():
    cell = SRAM6TCell.from_library(LIB, "lvt")
    for role in TRANSISTOR_ROLES:
        assert cell.device(role).nfin == 1
