"""Rare-event importance sampling: calibration, determinism, budgets.

The statistical tests run against a synthetic *linear* margin solver
``margin(z) = mu0 - z @ g`` (margins are then exactly Gaussian, so the
true tail ``P(margin < floor) = Phi((floor - mu0) / (sigma * |g|))`` is
known in closed form and the brute-force empirical estimator is
affordable at p ~ 1e-4).  The engine is solver-agnostic, so everything
verified here — agreement within the reported CI, chunk invariance,
eval budgets — carries over to the production batched cell solvers,
which ride the same code path (smoke-tested at the end).
"""

from __future__ import annotations

import json
import math
from statistics import NormalDist

import numpy as np
import pytest

from repro.cell.bias import CellBias
from repro.cell.importance import (
    BLOCK,
    DEFENSIVE_FRACTION,
    SAMPLERS,
    Z_95,
    MarginSolver,
    TailEstimate,
    TailSampleBuffer,
    block_rng,
    cell_margin_solver,
    draw_block,
    estimate_tail,
    find_failure_shift,
    mixture_log_weights,
    naive_samples_for_ci,
)

_NORMAL = NormalDist()

SIGMA = 0.039
MU0 = 0.14
GAIN = np.array([1.3, 0.2, 0.9, 0.1, 0.6, 0.4])
GAIN_NORM = float(np.linalg.norm(GAIN))


def linear_solver():
    return MarginSolver(lambda shifts: MU0 - shifts @ GAIN)


def floor_at(p_true):
    """The floor whose true linear-solver tail mass is ``p_true``."""
    return MU0 - (-_NORMAL.inv_cdf(p_true)) * SIGMA * GAIN_NORM


def p_true(floor):
    return _NORMAL.cdf((floor - MU0) / (SIGMA * GAIN_NORM))


# ---------------------------------------------------------------------------
# Deterministic block streams
# ---------------------------------------------------------------------------

class TestBlockStreams:
    def test_block_rng_pure_function_of_seed_and_index(self):
        a = block_rng(5, 3).normal(size=8)
        b = block_rng(5, 3).normal(size=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, block_rng(5, 4).normal(size=8))
        assert not np.array_equal(a, block_rng(6, 3).normal(size=8))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            block_rng(-1, 0)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError):
            draw_block("bogus", 0, 0, 6, SIGMA)

    def test_draw_block_deterministic(self):
        for sampler in ("naive", "antithetic"):
            a = draw_block(sampler, 9, 2, 6, SIGMA)
            b = draw_block(sampler, 9, 2, 6, SIGMA)
            assert np.array_equal(a, b)
            assert a.shape == (BLOCK, 6)

    def test_antithetic_mirrors_half_block(self):
        block = draw_block("antithetic", 1, 0, 6, SIGMA)
        half = BLOCK // 2
        assert np.array_equal(block[half:], -block[:half])

    def test_stratified_projection_covers_strata(self):
        direction = GAIN / GAIN_NORM
        block = draw_block("stratified", 1, 0, 6, SIGMA,
                           direction=direction)
        proj = block @ direction / SIGMA
        # One jittered normal quantile per stratum: the projections,
        # mapped back through the CDF, land one per 1/BLOCK stratum.
        u = np.sort([_NORMAL.cdf(x) for x in proj])
        strata = np.floor(u * BLOCK).astype(int)
        assert np.array_equal(np.sort(strata), np.arange(BLOCK))

    def test_shifted_mixture_weights_bounded(self):
        shift = 0.2 * GAIN / GAIN_NORM
        block = draw_block("shifted", 4, 0, 6, SIGMA, shift=shift)
        log_w = mixture_log_weights(block, shift, SIGMA)
        assert np.all(np.exp(log_w) <= 1.0 / DEFENSIVE_FRACTION + 1e-12)


# ---------------------------------------------------------------------------
# The mean-shift search
# ---------------------------------------------------------------------------

class TestFindFailureShift:
    def test_linear_solver_finds_boundary_point(self):
        solver = linear_solver()
        floor = floor_at(1e-4)
        search = find_failure_shift(solver, floor, SIGMA)
        assert search.crossed
        assert search.boundary_margin <= floor
        # The most probable failure point of a linear margin sits on
        # the boundary along the gradient: |shift| = z* sigma with
        # z* = (mu0 - floor) / (sigma |g|).
        z_star = (MU0 - floor) / (SIGMA * GAIN_NORM)
        assert search.z_norm == pytest.approx(z_star * SIGMA, rel=0.05)
        cosine = float(search.shift @ GAIN) / (
            np.linalg.norm(search.shift) * GAIN_NORM)
        assert cosine > 0.99

    def test_already_failing_center_needs_no_shift(self):
        solver = linear_solver()
        search = find_failure_shift(solver, MU0 + 0.01, SIGMA)
        assert search.crossed
        assert np.all(search.shift == 0.0)

    def test_unreachable_floor_reports_no_crossing(self):
        solver = MarginSolver(lambda shifts: np.full(shifts.shape[0],
                                                     1.0))
        search = find_failure_shift(solver, 0.0, SIGMA)
        assert not search.crossed

    def test_direction_hint_skips_gradient_probes(self):
        floor = floor_at(1e-4)
        cold = linear_solver()
        find_failure_shift(cold, floor, SIGMA)
        hinted = linear_solver()
        search = find_failure_shift(hinted, floor, SIGMA,
                                    direction=GAIN)
        assert search.crossed
        assert hinted.n_evals < cold.n_evals


# ---------------------------------------------------------------------------
# Calibration: the p ~ 1e-4 acceptance case
# ---------------------------------------------------------------------------

class TestCalibration:
    def test_shifted_agrees_with_empirical_within_ci(self):
        """The acceptance criterion: at p_fail ~ 1e-4 (brute force
        affordable) the shifted estimate covers both the analytic truth
        and a large brute-force empirical estimate within its reported
        95% CI."""
        floor = floor_at(1e-4)
        solver = linear_solver()
        est = estimate_tail(solver, floor, sampler="shifted",
                            sigma_vt=SIGMA, ci_target=0.1,
                            max_samples=16384, seed=3)
        assert est.converged
        assert est.agrees_with(p_true(floor))
        # Brute force: 2M iid draws, ~200 observed failures.
        rng = np.random.default_rng(1234)
        count = 0
        for _ in range(4):
            shifts = rng.normal(0.0, SIGMA, (500_000, GAIN.size))
            count += int(np.sum(MU0 - shifts @ GAIN < floor))
        empirical = count / 2_000_000
        assert est.agrees_with(empirical)
        # And it got there orders of magnitude cheaper than the brute
        # force that validated it.
        assert solver.n_evals < 100_000

    @pytest.mark.parametrize("sampler", ("naive", "antithetic",
                                         "stratified"))
    def test_baseline_samplers_cover_truth_at_1e2(self, sampler):
        floor = floor_at(1e-2)
        est = estimate_tail(linear_solver(), floor, sampler=sampler,
                            sigma_vt=SIGMA, ci_target=0.2,
                            max_samples=32768, seed=3)
        assert est.agrees_with(p_true(floor))
        assert est.ci_half > 0.0

    def test_stratified_never_reports_zero_ci(self):
        # The stratified estimate is quantized at 1/BLOCK per block; a
        # zero observed block-mean variance must not masquerade as a
        # converged zero-width interval.  A 2e-2 tail swallows stratum
        # zero whole (1/BLOCK < 2e-2), so every block fails at least
        # once regardless of jitter.
        floor = floor_at(2e-2)
        buffer = TailSampleBuffer(linear_solver(), sampler="stratified",
                                  sigma_vt=SIGMA, seed=0,
                                  search_floor=floor)
        buffer.ensure(2 * BLOCK)
        est = buffer.estimate(floor)
        assert 0.0 < est.p_fail < 1.0
        assert est.ci_half >= Z_95 * 0.5 / (BLOCK * math.sqrt(2))


# ---------------------------------------------------------------------------
# Adaptive budgets and eval accounting
# ---------------------------------------------------------------------------

class TestAdaptiveBudget:
    def test_deep_tail_beats_naive_by_20x(self):
        """The acceptance criterion: >= 20x fewer margin-solver evals
        than naive sampling for the same CI target at p <= 1e-6."""
        floor = floor_at(1e-6)
        solver = linear_solver()
        est = estimate_tail(solver, floor, sampler="shifted",
                            sigma_vt=SIGMA, ci_target=0.1,
                            max_samples=65536, seed=3)
        assert est.converged
        assert est.agrees_with(p_true(floor))
        required = naive_samples_for_ci(est.p_fail, est.rel_ci)
        assert required >= 20 * solver.n_evals

    def test_unconverged_cap_is_flagged(self):
        floor = floor_at(1e-4)
        est = estimate_tail(linear_solver(), floor, sampler="naive",
                            sigma_vt=SIGMA, ci_target=0.1,
                            max_samples=4 * BLOCK, seed=0)
        assert not est.converged
        assert est.n_samples == 4 * BLOCK

    def test_zero_observed_tail_reports_zero_with_bound(self):
        est = estimate_tail(linear_solver(), -10.0, sampler="naive",
                            sigma_vt=SIGMA, ci_target=0.1,
                            max_samples=2 * BLOCK, seed=0)
        assert est.p_fail == 0.0
        assert est.ci_half > 0.0
        assert est.rel_ci == math.inf

    def test_estimate_needs_two_blocks(self):
        buffer = TailSampleBuffer(linear_solver(), sampler="naive",
                                  sigma_vt=SIGMA)
        buffer.ensure(BLOCK)
        with pytest.raises(ValueError):
            buffer.estimate(0.0, BLOCK)

    def test_block_validation(self):
        with pytest.raises(ValueError):
            TailSampleBuffer(linear_solver(), block=63)
        with pytest.raises(ValueError):
            TailSampleBuffer(linear_solver(), sampler="bogus")


# ---------------------------------------------------------------------------
# Bit-reproducibility across chunk sizes and growth patterns
# ---------------------------------------------------------------------------

class TestChunkInvariance:
    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_estimate_identical_across_chunks(self, sampler):
        floor = floor_at(1e-2 if sampler != "shifted" else 1e-4)
        outcomes = set()
        for chunk in (BLOCK, 4 * BLOCK, 16 * BLOCK):
            est = estimate_tail(linear_solver(), floor, sampler=sampler,
                                sigma_vt=SIGMA, ci_target=0.15,
                                max_samples=8192, seed=3, chunk=chunk)
            outcomes.add((est.p_fail, est.ci_half, est.n_samples,
                          est.ess, est.converged))
        assert len(outcomes) == 1

    def test_growth_pattern_does_not_change_samples(self):
        floor = floor_at(1e-4)
        one = TailSampleBuffer(linear_solver(), sampler="shifted",
                               sigma_vt=SIGMA, seed=3,
                               search_floor=floor)
        one.ensure(16 * BLOCK)
        grown = TailSampleBuffer(linear_solver(), sampler="shifted",
                                 sigma_vt=SIGMA, seed=3,
                                 search_floor=floor)
        for n in (2 * BLOCK, 5 * BLOCK, 16 * BLOCK):
            grown.ensure(n, chunk=3 * BLOCK)
        assert np.array_equal(one._margins, grown._margins)
        assert np.array_equal(one._log_weights, grown._log_weights)

    def test_prefix_estimates_are_stable_under_growth(self):
        floor = floor_at(1e-4)
        buffer = TailSampleBuffer(linear_solver(), sampler="shifted",
                                  sigma_vt=SIGMA, seed=3,
                                  search_floor=floor)
        buffer.ensure(4 * BLOCK)
        before = buffer.estimate(floor, 4 * BLOCK)
        buffer.ensure(32 * BLOCK)
        after = buffer.estimate(floor, 4 * BLOCK)
        assert before.p_fail == after.p_fail
        assert before.ci_half == after.ci_half


# ---------------------------------------------------------------------------
# Floor queries (the margin-floor solve surface)
# ---------------------------------------------------------------------------

class TestFloorQueries:
    @pytest.fixture(scope="class")
    def buffer(self):
        buffer = TailSampleBuffer(linear_solver(), sampler="shifted",
                                  sigma_vt=SIGMA, seed=3,
                                  search_floor=floor_at(1e-6))
        buffer.estimate_to_ci(floor_at(1e-6), ci_target=0.1,
                              max_samples=65536)
        return buffer

    def test_floor_for_inverts_tail_mass(self, buffer):
        for target in (1e-6, 1e-5, 1e-4):
            floor = buffer.floor_for(target)
            assert buffer.tail_mass(floor) == pytest.approx(
                target, rel=0.02)
            assert buffer.coverage(floor) > 0

    def test_quantile_gap_matches_gaussian_margins(self, buffer):
        # For Gaussian margins Q(p2) - Q(p1) = (z1 - z2) * sigma_margin.
        p1, p2 = 1e-6, 1e-4
        gap = buffer.floor_for(p2) - buffer.floor_for(p1)
        z1 = -_NORMAL.inv_cdf(p1)
        z2 = -_NORMAL.inv_cdf(p2)
        assert gap == pytest.approx((z1 - z2) * SIGMA * GAIN_NORM,
                                    rel=0.1)

    def test_floor_queries_never_resolve(self, buffer):
        evals = buffer.solver.n_evals
        buffer.floor_for(1e-5)
        buffer.tail_mass(0.0)
        buffer.estimate(floor_at(1e-5))
        assert buffer.solver.n_evals == evals

    def test_p_target_validation(self, buffer):
        with pytest.raises(ValueError):
            buffer.floor_for(0.0)
        with pytest.raises(ValueError):
            buffer.floor_for(1.0)

    def test_empty_buffer_rejects_floor_queries(self):
        empty = TailSampleBuffer(linear_solver(), sampler="naive",
                                 sigma_vt=SIGMA)
        with pytest.raises(ValueError):
            empty.tail_mass(0.0)


# ---------------------------------------------------------------------------
# TailEstimate surface
# ---------------------------------------------------------------------------

class TestTailEstimate:
    def test_ci_and_agreement_helpers(self):
        est = TailEstimate(p_fail=1e-4, ci_half=2e-5, n_samples=1024,
                           ess=512.0, sampler="shifted", floor=0.0)
        assert est.rel_ci == pytest.approx(0.2)
        assert est.ci_low == pytest.approx(8e-5)
        assert est.ci_high == pytest.approx(1.2e-4)
        assert est.agrees_with(9e-5)
        assert not est.agrees_with(2e-4)

    def test_zero_estimate_has_infinite_rel_ci(self):
        est = TailEstimate(p_fail=0.0, ci_half=1e-3, n_samples=128,
                           ess=128.0, sampler="naive", floor=0.0)
        assert est.rel_ci == math.inf

    def test_summary_is_json_safe(self):
        est = TailEstimate(p_fail=0.0, ci_half=1e-3, n_samples=128,
                           ess=128.0, sampler="naive", floor=0.0,
                           shift=(0.01, -0.02))
        payload = json.loads(json.dumps(est.summary()))
        assert payload["rel_ci"] is None
        assert payload["shift"] == [0.01, -0.02]
        assert payload["source"] == "sampled"

    def test_naive_samples_for_ci(self):
        n = naive_samples_for_ci(1e-6, 0.1)
        expected = Z_95 ** 2 * (1.0 - 1e-6) / (1e-6 * 0.01)
        assert n == math.ceil(expected)
        with pytest.raises(ValueError):
            naive_samples_for_ci(0.0, 0.1)
        with pytest.raises(ValueError):
            naive_samples_for_ci(1e-6, 0.0)


# ---------------------------------------------------------------------------
# The production cell solver path (smoke: small budgets)
# ---------------------------------------------------------------------------

class TestCellSolver:
    def test_cell_margin_solver_counts_rows(self, hvt_cell):
        vdd = 0.6
        solver = cell_margin_solver(hvt_cell, vdd, CellBias.read(vdd))
        margins = solver(np.zeros((3, 6)))
        assert margins.shape == (3,)
        assert solver.n_evals == 3
        # Unshifted instances all see the nominal cell.
        assert np.ptp(margins) == pytest.approx(0.0, abs=1e-12)

    def test_shifted_estimate_on_real_solver(self, hvt_cell):
        vdd = 0.6
        solver = cell_margin_solver(hvt_cell, vdd, CellBias.read(vdd))
        est = estimate_tail(solver, 0.08, sampler="shifted",
                            ci_target=0.4, max_samples=4 * BLOCK,
                            seed=1)
        assert 0.0 <= est.p_fail <= 1.0
        assert est.n_samples >= 2 * BLOCK
        assert est.ess > 0.0
        assert solver.n_evals >= est.n_samples
