"""Noise-margin extraction: VTC solver, butterfly geometry, paper shapes."""

import numpy as np
import pytest

from repro.cell import CellBias, butterfly, hold_snm, read_snm, vtc
from repro.cell.snm import (
    _largest_squares,
    half_circuit_output,
    solve_half_circuit,
)
from repro.spice import Circuit, operating_point

VDD = 0.45


def test_vtc_endpoints(hvt_cell):
    bias = CellBias.hold()
    v_in, v_out = vtc(hvt_cell, "l", bias, access_on=False, points=31)
    assert v_out[0] == pytest.approx(bias.v_ddc, abs=0.01)
    assert v_out[-1] == pytest.approx(bias.v_ssc, abs=0.01)


def test_vtc_monotone_decreasing(hvt_cell):
    bias = CellBias.read()
    _v_in, v_out = vtc(hvt_cell, "l", bias, access_on=True, points=41)
    assert all(a >= b - 1e-9 for a, b in zip(v_out, v_out[1:]))


def test_read_vtc_low_level_disturbed(hvt_cell):
    """With the access on and BL high, the output cannot reach CVSS."""
    bias = CellBias.read()
    _v_in, v_out = vtc(hvt_cell, "l", bias, access_on=True, points=21)
    assert v_out[-1] > 0.02  # read-disturb voltage on the '0' node


def test_fast_solver_matches_full_newton(hvt_cell):
    """The bisection half-circuit VTC equals the full MNA solution."""
    bias = CellBias.read()
    for v_in in (0.0, 0.15, 0.3, 0.45):
        fast = half_circuit_output(hvt_cell, "l", v_in, bias,
                                   access_on=True)
        circuit = hvt_cell.build_circuit(bias, drive_qb=v_in)
        sol = operating_point(circuit, initial_guess={"q": VDD - v_in})
        assert fast == pytest.approx(sol["q"], abs=2e-4)


def test_solve_half_circuit_vectorized(hvt_cell):
    bias = CellBias.hold()
    v_in = np.array([0.0, 0.2, 0.45])
    vec = solve_half_circuit(hvt_cell, "l", v_in, bias, access_on=False)
    for k, v in enumerate(v_in):
        scalar = half_circuit_output(hvt_cell, "l", float(v), bias,
                                     access_on=False)
        assert vec[k] == pytest.approx(scalar, abs=1e-6)


def test_largest_squares_on_known_geometry():
    """Two offset lines y = -x + c: the inscribed square side is
    exactly the offset / 2 (u-separation / sqrt(2) with u-distance
    offset/sqrt(2) ... verified analytically: for curves y=-x+c1 and
    y=-x+c2 the diagonal gap is |c1-c2|/sqrt(2)*sqrt(2)? -> side
    |c1-c2|/2)."""
    x = np.linspace(0.0, 1.0, 101)
    y1 = -x + 1.0
    y2 = -x + 0.5
    s_a, s_b = _largest_squares(x, y1, x, y2)
    assert max(s_a, s_b) == pytest.approx(0.25, abs=1e-3)
    assert min(s_a, s_b) == pytest.approx(-0.25, abs=1e-3)


def test_butterfly_symmetric_cell_equal_lobes(hvt_cell):
    result = butterfly(hvt_cell, CellBias.hold(), access_on=False)
    assert result.lobe_low == pytest.approx(result.lobe_high, rel=1e-6)
    assert result.bistable


def test_butterfly_asymmetric_cell_unequal_lobes(hvt_cell):
    skewed = hvt_cell.with_overrides(
        {"pd_l": hvt_cell.params("pd_l").with_vt_shift(0.05)}
    )
    result = butterfly(skewed, CellBias.hold(), access_on=False)
    assert result.lobe_low < result.lobe_high
    assert result.snm == result.lobe_low


def test_hold_snm_exceeds_read_snm(hvt_cell, lvt_cell):
    for cell in (hvt_cell, lvt_cell):
        assert hold_snm(cell, VDD) > read_snm(cell, vdd=VDD)


def test_hvt_margins_beat_lvt(hvt_cell, lvt_cell):
    assert hold_snm(hvt_cell, VDD) >= hold_snm(lvt_cell, VDD)
    assert read_snm(hvt_cell, vdd=VDD) > read_snm(lvt_cell, vdd=VDD)


def test_vdd_boost_raises_rsnm(hvt_cell):
    levels = [0.45, 0.55, 0.65]
    snms = [read_snm(hvt_cell, vdd=VDD, v_ddc=v) for v in levels]
    assert snms[0] < snms[1] < snms[2]


def test_hvt_meets_delta_at_550(hvt_cell):
    """The paper's V_DDC = 550 mV cross point."""
    delta = 0.35 * VDD
    assert read_snm(hvt_cell, vdd=VDD, v_ddc=0.55) >= delta
    assert read_snm(hvt_cell, vdd=VDD, v_ddc=0.53) < delta


def test_wl_underdrive_raises_rsnm(hvt_cell):
    low = read_snm(hvt_cell, vdd=VDD, v_wl=0.30)
    nominal = read_snm(hvt_cell, vdd=VDD)
    assert low > nominal


def test_paper_rsnm_ratio_direction(hvt_cell, lvt_cell):
    ratio = read_snm(hvt_cell, vdd=VDD) / read_snm(lvt_cell, vdd=VDD)
    assert ratio > 1.05  # paper: 1.9x (our compact model: weaker, same sign)


def test_hsnm_scales_with_vdd(hvt_cell):
    assert hold_snm(hvt_cell, 0.30) < hold_snm(hvt_cell, 0.45)
