"""Transient cell write delay (a few real transient runs; kept lean)."""

import pytest

from repro.cell import cell_write_event

VDD = 0.45


@pytest.fixture(scope="module")
def events(hvt_cell):
    """Three write events reused by all assertions below."""
    return {
        "nominal": cell_write_event(hvt_cell, v_wl=VDD, vdd=VDD),
        "wlod": cell_write_event(hvt_cell, v_wl=0.54, vdd=VDD),
        "negbl": cell_write_event(hvt_cell, v_wl=VDD, vdd=VDD,
                                  v_bl_low=-0.1),
    }


def test_writes_complete(events):
    for event in events.values():
        assert event.completed
        assert event.delay > 0
        assert event.energy > 0


def test_wlod_speeds_up_write(events):
    assert events["wlod"].delay < 0.7 * events["nominal"].delay


def test_negative_bl_speeds_up_write(events):
    assert events["negbl"].delay < 0.7 * events["nominal"].delay


def test_write_delay_scale_is_picoseconds(events):
    assert 1e-13 < events["nominal"].delay < 1e-10


def test_energy_scale_is_femtojoules(events):
    assert 1e-18 < events["nominal"].energy < 1e-12
