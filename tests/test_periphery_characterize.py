"""The full characterization bundle and its cache round trip."""

import pytest

from repro.lut import CharacterizationCache
from repro.periphery import characterize
from repro.periphery.characterize import (
    PAPER_WRITE_DELAY_NO_ASSIST,
    _from_dict,
    _to_dict,
    CharacterizationGrids,
)


def test_lut_axis_coverage(hvt_char):
    """Every LUT must cover the optimizer's voltage ranges."""
    lo, hi = hvt_char.i_cvdd.x_range
    assert lo <= 0.45 and hi >= 0.70
    lo, hi = hvt_char.i_cvss.x_range
    assert lo <= -0.24 and hi >= 0.0
    assert hvt_char.i_read.x_range[1] >= 0.70
    assert hvt_char.i_read.y_range[0] <= -0.24
    lo, hi = hvt_char.d_write_sram.x_range
    assert lo <= 0.45 and hi >= 0.70


def test_write_delay_anchored_to_paper(hvt_char):
    """The HVT no-assist cell write delay anchors to 1.5 ps."""
    no_assist = hvt_char.d_write_sram(hvt_char.vdd)
    assert no_assist == pytest.approx(PAPER_WRITE_DELAY_NO_ASSIST,
                                      rel=0.10)


def test_write_delay_falls_with_overdrive(hvt_char):
    assert hvt_char.d_write_sram(0.60) < hvt_char.d_write_sram(0.48)


def test_i_read_lut_monotone_in_v_ssc(hvt_char):
    currents = [hvt_char.i_read(0.55, v)
                for v in (0.0, -0.1, -0.2, -0.24)]
    assert all(a < b for a, b in zip(currents, currents[1:]))


def test_leakage_in_bundle_matches_paper(hvt_char, lvt_char):
    assert hvt_char.p_leak_sram == pytest.approx(0.082e-9, rel=0.03)
    assert lvt_char.p_leak_sram == pytest.approx(1.692e-9, rel=0.03)


def test_flavors_share_periphery(hvt_char, lvt_char):
    """Periphery is always LVT: both bundles carry identical
    decoder/driver characterizations and Table-2 drive constants."""
    assert hvt_char.i_on_pfet == pytest.approx(lvt_char.i_on_pfet)
    assert hvt_char.i_on_tg == pytest.approx(lvt_char.i_on_tg)
    assert hvt_char.decoder.delay(7) == pytest.approx(
        lvt_char.decoder.delay(7)
    )


def test_serialization_round_trip(hvt_char, library):
    data = _to_dict(hvt_char)
    rebuilt = _from_dict(data, library, CharacterizationGrids())
    assert rebuilt.p_leak_sram == hvt_char.p_leak_sram
    assert rebuilt.i_read(0.55, -0.2) == pytest.approx(
        hvt_char.i_read(0.55, -0.2)
    )
    assert rebuilt.decoder.delay(8) == pytest.approx(
        hvt_char.decoder.delay(8)
    )
    assert rebuilt.sense.delay == hvt_char.sense.delay


def test_cache_hit_returns_equivalent_bundle(library, char_cache):
    again = characterize(library, "hvt", cache=char_cache)
    assert again.p_leak_sram > 0
    assert again.v_wl_flip > 0.3


def test_grids_signature_changes_with_resolution():
    a = CharacterizationGrids()
    b = CharacterizationGrids(v_wl_points=5)
    assert a.signature() != b.signature()
