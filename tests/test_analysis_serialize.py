"""JSON serialization of experiment results."""

import dataclasses
import json

import numpy as np

from repro.analysis import load_json, save_json, to_json


@dataclasses.dataclass
class Inner:
    values: np.ndarray


@dataclasses.dataclass
class Outer:
    name: str
    count: int
    ratio: float
    inner: Inner
    table: dict
    items: list


def sample():
    return Outer(
        name="x",
        count=np.int64(3),
        ratio=np.float64(1.5),
        inner=Inner(values=np.array([1.0, 2.0])),
        table={"k": np.float32(2.5), 7: "v"},
        items=[(1, 2), None, True],
    )


def test_numpy_scalars_coerced():
    data = json.loads(to_json(sample()))
    assert data["count"] == 3
    assert data["ratio"] == 1.5


def test_nested_dataclasses_and_arrays():
    data = json.loads(to_json(sample()))
    assert data["inner"]["values"] == [1.0, 2.0]


def test_dict_keys_stringified():
    data = json.loads(to_json(sample()))
    assert data["table"]["7"] == "v"


def test_lists_and_none():
    data = json.loads(to_json(sample()))
    assert data["items"][0] == [1, 2]
    assert data["items"][1] is None
    assert data["items"][2] is True


def test_non_data_objects_fall_back_to_repr():
    data = json.loads(to_json({"f": len}))
    assert "len" in data["f"]


def test_save_and_load_round_trip(tmp_path):
    path = str(tmp_path / "result.json")
    save_json(sample(), path)
    loaded = load_json(path)
    assert loaded["name"] == "x"
    assert loaded["inner"]["values"] == [1.0, 2.0]
