"""Tests for repro.yields.ecc: code geometry and overhead terms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DesignSpaceError
from repro.yields.ecc import (
    ECCOverhead,
    ecc_overhead,
    hamming_check_bits,
    make_code,
    secded_check_bits,
)


class TestCheckBits:
    def test_hamming_classic_widths(self):
        # The classic (2^k - 1, 2^k - 1 - k) family boundary cases.
        assert hamming_check_bits(1) == 2
        assert hamming_check_bits(4) == 3
        assert hamming_check_bits(11) == 4
        assert hamming_check_bits(26) == 5
        assert hamming_check_bits(57) == 6
        assert hamming_check_bits(64) == 7

    def test_secded_64_is_72_64(self):
        assert secded_check_bits(64) == 8

    def test_rejects_zero_data_bits(self):
        with pytest.raises(DesignSpaceError):
            hamming_check_bits(0)


class TestMakeCode:
    def test_none_has_no_columns(self):
        code = make_code("none", 64)
        assert code.check_bits == 0
        assert code.t == 0
        assert not code.corrects
        assert code.describe() == "none"

    def test_secded_geometry(self):
        code = make_code("secded", 64)
        assert code.check_bits == 8
        assert code.codeword_bits == 72
        assert code.t == 1
        assert code.corrects
        assert code.describe() == "(72,64) SECDED"

    def test_interleaved_ways(self):
        code = make_code("secded-x2", 64)
        assert code.interleave == 2
        assert code.data_bits_per_way == 32
        assert code.check_bits_per_way == secded_check_bits(32)
        assert code.check_bits == 2 * secded_check_bits(32)
        assert code.codeword_bits == 32 + secded_check_bits(32)

    def test_rejects_unknown_and_malformed_names(self):
        for name in ("paritee", "secded-x", "secded-x1", "secded-xQ"):
            with pytest.raises(DesignSpaceError):
                make_code(name, 64)

    def test_rejects_non_dividing_interleave(self):
        with pytest.raises(DesignSpaceError):
            make_code("secded-x3", 64)


class TestOverhead:
    def test_none_is_exactly_zero(self, hvt_char):
        zero = ecc_overhead(make_code("none", 64), hvt_char.decoder)
        assert zero == ECCOverhead.zero()

    def test_secded_terms_positive_and_ordered(self, hvt_char):
        over = ecc_overhead(make_code("secded", 64), hvt_char.decoder)
        assert over.encode_delay > 0.0
        assert over.encode_energy > 0.0
        # Correction recomputes the encode trees plus syndrome decode
        # and the correcting XOR: strictly costlier on both axes.
        assert over.correct_delay > over.encode_delay
        assert over.correct_energy > over.encode_energy

    def test_interleave_parallel_delay_scaled_energy(self, hvt_char):
        one = ecc_overhead(make_code("secded", 64), hvt_char.decoder)
        two = ecc_overhead(make_code("secded-x2", 64), hvt_char.decoder)
        # Ways run in parallel: the shorter codeword has shallower
        # trees, so delay does not grow; energy covers both ways.
        assert two.correct_delay <= one.correct_delay
        assert two.encode_delay <= one.encode_delay


class TestArrayFlowThrough:
    def test_check_columns_widen_rows(self, hvt_char):
        from repro.array.organization import ArrayOrganization

        org = ArrayOrganization(n_r=128, n_c=512, check_bits=8)
        assert org.n_c_phys == 512 + 8 * org.words_per_row
        assert org.word_bits_phys == org.word_bits + 8
        # Decoders keep addressing the logical geometry.
        plain = ArrayOrganization(n_r=128, n_c=512)
        assert org.row_address_bits == plain.row_address_bits
        assert org.column_address_bits == plain.column_address_bits

    def test_no_code_is_bit_identical(self, hvt_char):
        from repro.array.config import ArrayConfig
        from repro.array.model import DesignPoint, SRAMArrayModel

        base = SRAMArrayModel(hvt_char, ArrayConfig())
        ecc0 = SRAMArrayModel(hvt_char, ArrayConfig(ecc="none"))
        point = DesignPoint(n_r=128, n_c=512, n_pre=8, n_wr=4,
                            v_ddc=0.55, v_ssc=-0.1, v_wl=0.55)
        a = base.evaluate(128 * 512, point)
        b = ecc0.evaluate(128 * 512, point)
        assert a.edp == b.edp
        assert a.d_array == b.d_array
        assert a.e_total == b.e_total

    def test_secded_charges_delay_and_energy(self, hvt_char):
        from repro.array.config import ArrayConfig
        from repro.array.model import DesignPoint, SRAMArrayModel

        base = SRAMArrayModel(
            hvt_char, ArrayConfig(count_all_columns=True))
        ecc = SRAMArrayModel(
            hvt_char, ArrayConfig(count_all_columns=True, ecc="secded"))
        point = DesignPoint(n_r=128, n_c=512, n_pre=8, n_wr=4,
                            v_ddc=0.55, v_ssc=-0.1, v_wl=0.55)
        a = base.evaluate(128 * 512, point)
        b = ecc.evaluate(128 * 512, point)
        assert b.e_total > a.e_total
        assert b.d_array > a.d_array
        assert "ecc" in b.read_parts and "ecc" in b.write_parts

    def test_pipelined_mode_bounds_inline_mode(self, hvt_char):
        from repro.array.config import ArrayConfig
        from repro.array.model import DesignPoint, SRAMArrayModel

        inline = SRAMArrayModel(
            hvt_char,
            ArrayConfig(count_all_columns=True, ecc="secded"))
        staged = SRAMArrayModel(
            hvt_char,
            ArrayConfig(count_all_columns=True, ecc="secded",
                        ecc_pipelined=True))
        point = DesignPoint(n_r=128, n_c=512, n_pre=8, n_wr=4,
                            v_ddc=0.55, v_ssc=-0.1, v_wl=0.55)
        a = inline.evaluate(128 * 512, point)
        b = staged.evaluate(128 * 512, point)
        # A pipeline stage never beats zero stages, but always beats
        # serializing correction into the access.
        assert b.d_array <= a.d_array
        over = staged.ecc_terms
        assert b.d_array >= max(over.correct_delay, over.encode_delay)

    def test_broadcast_scalar_parity_with_code(self, hvt_char):
        import numpy as np

        from repro.array.config import ArrayConfig
        from repro.array.model import DesignPoint, SRAMArrayModel

        model = SRAMArrayModel(
            hvt_char, ArrayConfig(count_all_columns=True, ecc="secded"))
        v_sscs = np.array([0.0, -0.05, -0.1, -0.2])
        grid = model.evaluate(
            128 * 512,
            DesignPoint(n_r=128, n_c=512, n_pre=8, n_wr=4,
                        v_ddc=0.55, v_ssc=v_sscs, v_wl=0.55))
        for i, v in enumerate(v_sscs):
            scalar = model.evaluate(
                128 * 512,
                DesignPoint(n_r=128, n_c=512, n_pre=8, n_wr=4,
                            v_ddc=0.55, v_ssc=float(v), v_wl=0.55))
            assert scalar.edp == grid.edp[i]

    def test_unknown_code_fails_at_config_construction(self):
        from repro.array.config import ArrayConfig

        with pytest.raises(DesignSpaceError):
            ArrayConfig(ecc="not-a-code")
