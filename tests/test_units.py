"""Unit helpers: conversions, formatting, power-of-two utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_phi_t_room_temperature():
    assert 0.0255 < units.PHI_T < 0.0262


def test_mv_to_volts():
    assert units.mV(450) == pytest.approx(0.45)


def test_ua_na_pa_scaling():
    assert units.uA(1) == pytest.approx(1e-6)
    assert units.nA(1) == pytest.approx(1e-9)
    assert units.pA(1) == pytest.approx(1e-12)


def test_capacitance_helpers():
    assert units.fF(0.17) == pytest.approx(0.17e-15)
    assert units.aF(170) == pytest.approx(units.fF(0.17))


def test_time_helpers():
    assert units.ps(1.5) == pytest.approx(1.5e-12)
    assert units.ns(1) == pytest.approx(1000 * units.ps(1))


def test_energy_power_helpers():
    assert units.fJ(1) == pytest.approx(1e-15)
    assert units.aJ(1000) == pytest.approx(units.fJ(1))
    assert units.nW(1.692) == pytest.approx(1.692e-9)


def test_length_helpers():
    assert units.nm(43) == pytest.approx(43e-9)
    assert units.um(1) == pytest.approx(1000 * units.nm(1))


@given(st.floats(min_value=1e-6, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_as_mv_round_trip(value):
    assert units.as_mV(units.mV(value)) == pytest.approx(value)


@given(st.floats(min_value=1e-6, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_as_ps_round_trip(value):
    assert units.as_ps(units.ps(value)) == pytest.approx(value)


def test_as_accessors():
    assert units.as_uA(2.5e-6) == pytest.approx(2.5)
    assert units.as_nA(3e-9) == pytest.approx(3.0)
    assert units.as_fF(5e-15) == pytest.approx(5.0)
    assert units.as_fJ(7e-15) == pytest.approx(7.0)
    assert units.as_aJ(1e-18) == pytest.approx(1.0)
    assert units.as_nW(0.082e-9) == pytest.approx(0.082)


def test_eng_formatting():
    assert units.eng(1.692e-9, "W") == "1.692nW"
    assert units.eng(0.0, "V") == "0V"
    assert units.eng(4.5e-12, "s") == "4.5ps"
    assert units.eng(2.2e3, "Hz") == "2.2kHz"


def test_eng_negative_values():
    assert units.eng(-0.24, "V").startswith("-240")


def test_bytes_to_bits():
    assert units.bytes_to_bits(128) == 1024


def test_capacity_label():
    assert units.capacity_label(128) == "128B"
    assert units.capacity_label(1024) == "1KB"
    assert units.capacity_label(16384) == "16KB"


def test_is_power_of_two():
    assert units.is_power_of_two(1)
    assert units.is_power_of_two(1024)
    assert not units.is_power_of_two(0)
    assert not units.is_power_of_two(-4)
    assert not units.is_power_of_two(3)
    assert not units.is_power_of_two(2.5)


@given(st.integers(min_value=0, max_value=60))
def test_log2_int_powers(exponent):
    assert units.log2_int(2 ** exponent) == exponent


def test_log2_int_rejects_non_powers():
    with pytest.raises(ValueError):
        units.log2_int(12)


@given(st.integers(min_value=1, max_value=10**9))
def test_is_power_of_two_matches_bit_trick(value):
    expected = value & (value - 1) == 0
    assert units.is_power_of_two(value) == expected
