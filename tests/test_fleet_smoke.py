"""Fleet kill/resume, end to end: N serve replicas plus remote HTTP
workers, SIGKILL the queue-hosting replica mid-sweep, restart it, and
verify the sweep resumes bit-identically with zero recomputed cells.

The heavy lifting (topology / kill / resume / compare) lives in
``repro.fleet.smoke`` — the same script CI runs — so this test just
drives it against the repo's warm characterization cache and asserts
its verdict.  The topology is parameterized: the minimal 2-replica
fleet and a 3-replica fleet, proving the kill/resume contract holds
with more than one surviving store replica (checkpoints must converge
on *every* store, not just the designated pair).
"""

import os
import subprocess
import sys

import pytest

from .conftest import CACHE_PATH

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


@pytest.mark.parametrize("hosts", [2, 3])
def test_replica_sigkill_resume_is_bit_identical(paper_session, hosts):
    """``paper_session`` is requested only to guarantee the shared
    characterization cache is fully populated before the replica and
    worker subprocesses (which share it read-only) start."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fleet.smoke",
         "--cache", CACHE_PATH, "--hosts", str(hosts)],
        env=env, capture_output=True, text=True, timeout=1200,
    )
    tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-30:])
    assert proc.returncode == 0, tail
    assert "fleet smoke passed" in proc.stdout, tail
    assert ("all %d replicas serving" % hosts) in proc.stdout, tail
