"""Fleet kill/resume, end to end: two serve replicas plus remote HTTP
workers, SIGKILL the queue-hosting replica mid-sweep, restart it, and
verify the sweep resumes bit-identically with zero recomputed cells.

The heavy lifting (topology / kill / resume / compare) lives in
``repro.fleet.smoke`` — the same script CI runs — so this test just
drives it against the repo's warm characterization cache and asserts
its verdict.
"""

import os
import subprocess
import sys

from .conftest import CACHE_PATH

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def test_replica_sigkill_resume_is_bit_identical(paper_session):
    """``paper_session`` is requested only to guarantee the shared
    characterization cache is fully populated before the replica and
    worker subprocesses (which share it read-only) start."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fleet.smoke",
         "--cache", CACHE_PATH],
        env=env, capture_output=True, text=True, timeout=1200,
    )
    tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-30:])
    assert proc.returncode == 0, tail
    assert "fleet smoke passed" in proc.stdout, tail
