"""Extension-study drivers and the extended CLI."""

import pytest

from repro.analysis import (
    breakdown_study,
    corners_study,
    temperature_study,
    word_width_study,
)
from repro.cli import main as cli_main
from tests.conftest import CACHE_PATH


def test_corners_study(paper_session):
    result = corners_study(paper_session)
    assert len(result.rows) == 5
    assert result.rows[0]["corner"] == "TT"
    assert "corners" in result.report().lower()


def test_temperature_study(paper_session):
    result = temperature_study(paper_session, temperatures_c=(25, 125))
    assert len(result.rows) == 2
    assert result.rows[1]["leak_hvt_nW"] > result.rows[0]["leak_hvt_nW"]


def test_breakdown_study(paper_session):
    result = breakdown_study(paper_session, capacity_bytes=4096)
    names = {row["component"] for row in result.rows}
    assert {"BL_rd", "WL_rd", "PRE_wr", "CVSS"} <= names
    assert result.d_array > 0
    assert "breakdown" in result.report().lower()


def test_word_width_study(paper_session):
    result = word_width_study(paper_session, capacity_bytes=1024,
                              widths=(32, 64))
    assert [row["W_bits"] for row in result.rows] == [32, 64]
    for row in result.rows:
        assert row["n_r"] * row["n_c"] == 1024 * 8
        assert row["EDP_1e-24"] > 0


def test_cli_temperature(capsys):
    rc = cli_main(["temperature", "--cache", CACHE_PATH])
    assert rc == 0
    assert "temperature" in capsys.readouterr().out.lower()


def test_cli_breakdown(capsys):
    rc = cli_main(["breakdown", "--cache", CACHE_PATH])
    assert rc == 0
    assert "WL_rd" in capsys.readouterr().out
