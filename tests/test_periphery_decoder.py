"""Structural decoder model."""

import pytest

from repro.errors import DesignSpaceError
from repro.periphery import build_decoder_model


@pytest.fixture(scope="module")
def decoder(hvt_char):
    return hvt_char.decoder


def test_degenerate_decoder_is_free(decoder):
    assert decoder.delay(0) == 0.0
    assert decoder.energy(0) == 0.0


def test_delay_monotone_in_address_bits(decoder):
    delays = [decoder.delay(k) for k in range(1, 11)]
    assert all(a <= b + 1e-15 for a, b in zip(delays, delays[1:]))


def test_energy_monotone_in_address_bits(decoder):
    energies = [decoder.energy(k) for k in range(1, 11)]
    assert all(a <= b + 1e-20 for a, b in zip(energies, energies[1:]))


def test_delay_grows_sublinearly_with_outputs(decoder):
    """Buffer insertion keeps decoder delay ~log(n_r): doubling the
    row count from 512 to 1024 must cost far less than 2x."""
    assert decoder.delay(10) < 1.5 * decoder.delay(9)


def test_delay_scale_is_picoseconds(decoder):
    assert 1e-13 < decoder.delay(7) < 1e-9


def test_requires_nand2():
    with pytest.raises(DesignSpaceError):
        build_decoder_model(object(), {3: object()}, 1e-16)


def test_missing_large_fanin_raises(hvt_char):
    decoder = build_decoder_model(
        hvt_char.decoder.inverter,
        {2: hvt_char.decoder.nands[2]},
        hvt_char.driver.input_capacitance,
    )
    with pytest.raises(DesignSpaceError):
        decoder.delay(9)  # needs a NAND5


def test_max_address_bits(decoder):
    assert decoder.max_address_bits() >= 10


def test_buffer_chain_behavior(decoder):
    d_small, e_small, n_small = decoder._buffer_chain(
        decoder.inverter.c_input * 0.5
    )
    assert (d_small, e_small, n_small) == (0.0, 0.0, 0)
    d_big, e_big, n_big = decoder._buffer_chain(
        decoder.inverter.c_input * 100
    )
    assert n_big >= 3
    assert d_big > 0 and e_big > 0
