"""Standby leakage: the paper's absolute calibration points."""

import pytest

from repro.cell import CellBias, cell_leakage_power, leakage_vs_vdd

VDD = 0.45


def test_lvt_leakage_matches_paper(lvt_cell):
    leak = cell_leakage_power(lvt_cell, VDD)
    assert leak == pytest.approx(1.692e-9, rel=0.03)


def test_hvt_leakage_matches_paper(hvt_cell):
    leak = cell_leakage_power(hvt_cell, VDD)
    assert leak == pytest.approx(0.082e-9, rel=0.03)


def test_leakage_ratio_twenty_x(lvt_cell, hvt_cell):
    ratio = cell_leakage_power(lvt_cell, VDD) / cell_leakage_power(
        hvt_cell, VDD
    )
    assert ratio == pytest.approx(20.6, rel=0.05)


def test_leakage_monotone_in_vdd(hvt_cell):
    leaks = leakage_vs_vdd(hvt_cell, [0.1, 0.2, 0.3, 0.45])
    assert all(a < b for a, b in zip(leaks, leaks[1:]))


def test_leakage_positive_at_low_vdd(lvt_cell):
    assert cell_leakage_power(lvt_cell, 0.1) > 0


def test_lvt_at_100mv_still_leakier_than_hvt_at_nominal(lvt_cell, hvt_cell):
    """The paper's Section-2 punchline (~5x)."""
    ratio = cell_leakage_power(lvt_cell, 0.1) / cell_leakage_power(
        hvt_cell, VDD
    )
    assert ratio > 3.0


def test_leakage_custom_bias(hvt_cell):
    bias = CellBias.hold(VDD)
    assert cell_leakage_power(hvt_cell, bias=bias) == pytest.approx(
        cell_leakage_power(hvt_cell, VDD), rel=1e-9
    )
