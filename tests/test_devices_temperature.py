"""Temperature scaling of devices and cells."""

import pytest

from repro.cell import SRAM6TCell, cell_leakage_power, hold_snm
from repro.devices import (
    FinFET,
    celsius,
    library_at_temperature,
    params_at_temperature,
)

VDD = 0.45


def test_celsius_conversion():
    assert celsius(25) == pytest.approx(298.15)
    assert celsius(-40) == pytest.approx(233.15)


def test_reference_temperature_is_identity(library):
    assert library_at_temperature(library, 300.0) is library


def test_param_scaling_directions(library):
    hot = params_at_temperature(library.nfet_hvt, 398.0)
    assert hot.vt < library.nfet_hvt.vt            # Vt drops
    assert hot.gamma_s > library.nfet_hvt.gamma_s  # slope shallows
    assert hot.i_floor > library.nfet_hvt.i_floor  # junction leakage up
    assert hot.b < library.nfet_hvt.b              # mobility down


def test_invalid_temperature(library):
    with pytest.raises(ValueError):
        params_at_temperature(library.nfet_hvt, -10.0)


def test_off_current_rises_steeply_with_temperature(library):
    cold = FinFET(library_at_temperature(library, 233.0).nfet_hvt)
    room = FinFET(library.nfet_hvt)
    hot = FinFET(library_at_temperature(library, 398.0).nfet_hvt)
    assert cold.ioff(VDD) < room.ioff(VDD) < hot.ioff(VDD)
    assert hot.ioff(VDD) > 20.0 * room.ioff(VDD)


def test_lvt_hvt_leakage_gap_shrinks_when_hot(library):
    """The HVT advantage is worth fewer decades at a shallower slope —
    the classic reason leakage signoff happens at the hot corner."""
    def ratio(lib):
        lvt = cell_leakage_power(SRAM6TCell.from_library(lib, "lvt"), VDD)
        hvt = cell_leakage_power(SRAM6TCell.from_library(lib, "hvt"), VDD)
        return lvt / hvt

    room = ratio(library)
    hot = ratio(library_at_temperature(library, 398.0))
    assert room == pytest.approx(20.6, rel=0.05)
    assert hot < room


def test_hold_margin_degrades_when_hot(library):
    room_cell = SRAM6TCell.from_library(library, "hvt")
    hot_cell = SRAM6TCell.from_library(
        library_at_temperature(library, 398.0), "hvt"
    )
    assert hold_snm(hot_cell, VDD) < hold_snm(room_cell, VDD)


def test_on_current_mildly_temperature_dependent(library):
    """Falling Vt partly cancels falling mobility near threshold."""
    room = FinFET(library.nfet_lvt).ion(VDD)
    hot = FinFET(library_at_temperature(library, 398.0).nfet_lvt).ion(VDD)
    assert 0.6 * room < hot < 1.5 * room
