"""The compact FinFET I-V model: physics sanity, derivatives, symmetry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import DeviceLibrary, FinFET, FinFETParams
from repro.devices.model import ids_core, ids_core_with_derivatives

LIB = DeviceLibrary.default_7nm()
VDD = LIB.vdd

voltages = st.floats(min_value=-0.3, max_value=0.8,
                     allow_nan=False, allow_infinity=False)


@pytest.fixture(scope="module")
def nfet():
    return FinFET(LIB.nfet_lvt)


@pytest.fixture(scope="module")
def pfet():
    return FinFET(LIB.pfet_lvt)


def test_zero_vds_zero_current(nfet):
    assert nfet.current(VDD, 0.2, 0.2) == pytest.approx(0.0, abs=1e-15)


def test_on_current_positive_and_microamp_scale(nfet):
    ion = nfet.ion(VDD)
    assert 5e-6 < ion < 1e-4


def test_off_current_small(nfet):
    ioff = nfet.ioff(VDD)
    assert 0 < ioff < 1e-8
    assert nfet.on_off_ratio(VDD) > 1e3


def test_nfet_requires_finfet_params():
    with pytest.raises(TypeError):
        FinFET("not params")


def test_width_quantization_rejects_fractional_fins():
    with pytest.raises(ValueError):
        FinFET(LIB.nfet_lvt, nfin=1.5)
    with pytest.raises(ValueError):
        FinFET(LIB.nfet_lvt, nfin=0)


def test_current_scales_linearly_with_fins():
    one = FinFET(LIB.nfet_lvt, 1)
    five = FinFET(LIB.nfet_lvt, 5)
    assert five.ion(VDD) == pytest.approx(5.0 * one.ion(VDD))
    assert five.ioff(VDD) == pytest.approx(5.0 * one.ioff(VDD))


def test_capacitances_scale_with_fins():
    three = FinFET(LIB.nfet_lvt, 3)
    assert three.c_gate == pytest.approx(3 * LIB.nfet_lvt.c_gate)
    assert three.c_drain == pytest.approx(3 * LIB.nfet_lvt.c_drain)


def test_source_drain_exchange_antisymmetry(nfet):
    """Swapping drain and source negates the terminal current."""
    for vg, va, vb in [(0.45, 0.4, 0.1), (0.3, 0.0, 0.45), (0.2, 0.3, 0.3)]:
        forward = nfet.current(vg, va, vb)
        reverse = nfet.current(vg, vb, va)
        assert forward == pytest.approx(-reverse, rel=1e-9, abs=1e-18)


def test_pfet_mirror_of_nfet():
    """A PFET with NFET-matched parameters conducts the mirrored
    current: I_p(vg, vd, vs) = -I_n(vdd-vg, vdd-vd, vdd-vs)."""
    n_params = LIB.nfet_lvt
    p_params = FinFETParams(
        polarity="p", vt=n_params.vt, b=n_params.b,
        alpha=n_params.alpha, gamma_s=n_params.gamma_s,
        i_floor=n_params.i_floor,
    )
    nfet = FinFET(n_params)
    pfet = FinFET(p_params)
    for vg, vd, vs in [(0.0, 0.2, 0.45), (0.1, 0.0, 0.45), (0.45, 0.3, 0.4)]:
        mirrored = -nfet.current(VDD - vg, VDD - vd, VDD - vs)
        assert pfet.current(vg, vd, vs) == pytest.approx(
            mirrored, rel=1e-9, abs=1e-18
        )


def test_pfet_conducts_when_gate_low(pfet):
    current = pfet.current(0.0, 0.0, VDD)
    assert current < 0  # into-drain current is negative while charging
    assert abs(current) > 1e-6


@settings(max_examples=120, deadline=None)
@given(vg=voltages, vd=voltages, vs=voltages)
def test_derivatives_match_finite_differences(vg, vd, vs):
    nfet = FinFET(LIB.nfet_lvt)
    h = 1e-7
    _i, d_vg, d_vd, d_vs = nfet.current_and_derivatives(vg, vd, vs)
    num_vg = (nfet.current(vg + h, vd, vs)
              - nfet.current(vg - h, vd, vs)) / (2 * h)
    num_vd = (nfet.current(vg, vd + h, vs)
              - nfet.current(vg, vd - h, vs)) / (2 * h)
    num_vs = (nfet.current(vg, vd, vs + h)
              - nfet.current(vg, vd, vs - h)) / (2 * h)
    scale = max(abs(num_vg), abs(num_vd), abs(num_vs), 1e-9)
    assert d_vg == pytest.approx(num_vg, abs=5e-3 * scale)
    assert d_vd == pytest.approx(num_vd, abs=5e-3 * scale)
    assert d_vs == pytest.approx(num_vs, abs=5e-3 * scale)


@settings(max_examples=60, deadline=None)
@given(vgs_lo=voltages, vgs_hi=voltages,
       vds=st.floats(min_value=0.01, max_value=0.8))
def test_current_monotone_in_gate_voltage(vgs_lo, vgs_hi, vds):
    if vgs_lo > vgs_hi:
        vgs_lo, vgs_hi = vgs_hi, vgs_lo
    i_lo = ids_core(vgs_lo, vds, LIB.nfet_lvt)
    i_hi = ids_core(vgs_hi, vds, LIB.nfet_lvt)
    assert i_hi >= i_lo - 1e-18


@settings(max_examples=60, deadline=None)
@given(vgs=voltages,
       vds_lo=st.floats(min_value=0.0, max_value=0.8),
       vds_hi=st.floats(min_value=0.0, max_value=0.8))
def test_current_monotone_in_drain_voltage(vgs, vds_lo, vds_hi):
    if vds_lo > vds_hi:
        vds_lo, vds_hi = vds_hi, vds_lo
    i_lo = ids_core(vgs, vds_lo, LIB.nfet_lvt)
    i_hi = ids_core(vgs, vds_hi, LIB.nfet_lvt)
    assert i_hi >= i_lo - 1e-18


def test_vectorized_evaluation_matches_scalar(nfet):
    vg = np.array([0.0, 0.2, 0.45, 0.3])
    vd = np.array([0.45, 0.1, 0.45, 0.0])
    vs = np.array([0.0, 0.0, 0.1, 0.3])
    vec_i, vec_dg, vec_dd, vec_ds = nfet.current_and_derivatives(vg, vd, vs)
    for k in range(len(vg)):
        i, dg, dd, ds = nfet.current_and_derivatives(
            float(vg[k]), float(vd[k]), float(vs[k])
        )
        assert vec_i[k] == pytest.approx(i)
        assert vec_dg[k] == pytest.approx(dg)
        assert vec_dd[k] == pytest.approx(dd)
        assert vec_ds[k] == pytest.approx(ds)


def test_core_derivatives_continuous_across_threshold():
    params = LIB.nfet_hvt
    eps = 1e-6
    below = ids_core_with_derivatives(params.vt - eps, 0.2, params)
    above = ids_core_with_derivatives(params.vt + eps, 0.2, params)
    assert below[1] == pytest.approx(above[1], rel=1e-3)


def test_repr_mentions_polarity_and_fins(nfet):
    text = repr(nfet)
    assert "nFET" in text
    assert "nfin=1" in text


def test_scalar_inputs_return_python_floats(nfet):
    outputs = nfet.current_and_derivatives(0.45, 0.3, 0.0)
    assert all(type(term) is float for term in outputs)


def test_array_inputs_return_float64_arrays(nfet):
    vg = np.array([0.0, 0.45])
    outputs = nfet.current_and_derivatives(vg, 0.3, 0.0)
    for term in outputs:
        assert isinstance(term, np.ndarray)
        assert term.dtype == np.float64
        assert term.shape == vg.shape


def test_batched_device_evaluates_per_sample_vt():
    shifts = np.array([0.0, 0.05, -0.05])
    batched = FinFET(LIB.nfet_lvt.with_vt_shifts(shifts), 1)
    column = batched.current_and_derivatives(0.45, 0.3, 0.0)[0]
    assert column.shape == (3, 1)
    for k, delta in enumerate(shifts):
        scalar = FinFET(LIB.nfet_lvt.with_vt_shift(float(delta)), 1)
        assert column[k, 0] == scalar.current_and_derivatives(0.45, 0.3, 0.0)[0]
    assert "batched[3]" in repr(batched)
