"""YieldTargetConstraint: engine parity, none-equivalence, memoization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.opt import ExhaustiveOptimizer, YieldConstraint, \
    YieldTargetConstraint
from repro.opt.methods import make_policy
from repro.opt.space import DesignSpace
from repro.yields.ecc import make_code

ENGINES = ("loop", "vectorized", "fused", "pruned")
CAPACITY_BITS = 1024 * 8


@pytest.fixture(scope="module")
def space():
    # Trimmed pulse-count axes keep the loop engine quick; the optimum
    # for this cell sits well inside the trimmed bounds.
    return DesignSpace(n_pre_max=20, n_wr_max=8)


def _optimize(session, constraint, engine, space,
              flavor="hvt", method="M2"):
    from repro.array.model import SRAMArrayModel

    model = SRAMArrayModel(session.chars[flavor], session.config)
    levels = session.yield_levels(flavor)
    return ExhaustiveOptimizer(model, space, constraint).optimize(
        CAPACITY_BITS, make_policy(method, levels), engine=engine)


def _design_tuple(result):
    d = result.design
    return (d.n_r, d.n_c, d.n_pre, d.n_wr,
            d.v_ddc, float(d.v_ssc), d.v_wl)


def _target_constraint(session, code, y_target=0.9, flavor="hvt",
                       **kwargs):
    base = session.constraint(flavor)
    return YieldTargetConstraint(
        library=session.library, flavor=flavor, delta=session.delta,
        y_target=y_target, code=code, capacity_bits=CAPACITY_BITS,
        word_bits=session.config.word_bits,
        trust_fixed_rails=base.trust_fixed_rails,
        flip_lookup=base.flip_lookup, **kwargs)


class TestNoneEquivalence:
    """code="none" must reproduce the fixed-delta optimum exactly."""

    @pytest.mark.parametrize("y_target", [0.5, 0.9, 0.999])
    def test_degenerates_to_fixed_delta(self, paper_session, space,
                                        y_target):
        constraint = _target_constraint(paper_session, "none", y_target)
        assert constraint.delta_z == 0.0

        fixed = _optimize(paper_session, paper_session.constraint("hvt"),
                          "pruned", space)
        relaxed = _optimize(paper_session, constraint, "pruned", space)
        assert _design_tuple(relaxed) == _design_tuple(fixed)
        assert relaxed.metrics.edp == fixed.metrics.edp
        # And the degenerate path never paid for a Monte Carlo run.
        assert constraint._stat_cache == {}

    def test_requirement_is_exactly_delta(self, paper_session):
        constraint = _target_constraint(paper_session, "none")
        assert constraint.requirement(0.55, 0.0) == paper_session.delta


class TestEngineParity:
    """All four engines agree bit-for-bit under the relaxed floor."""

    @pytest.fixture(scope="class")
    def results(self, paper_session, space):
        # One shared constraint: the MC sigma memo is deterministic
        # (fixed seed), so sharing only saves time, never changes
        # values.
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        assert constraint.delta_z > 0.0
        return {
            engine: _optimize(paper_session, constraint, engine, space)
            for engine in ENGINES
        }

    @pytest.mark.parametrize("engine", ENGINES[1:])
    def test_matches_loop_engine(self, results, engine):
        assert _design_tuple(results[engine]) \
            == _design_tuple(results["loop"])
        assert results[engine].metrics.edp == results["loop"].metrics.edp
        assert results[engine].metrics.d_array \
            == results["loop"].metrics.d_array
        assert results[engine].metrics.e_total \
            == results["loop"].metrics.e_total

    def test_relaxation_admits_no_worse_edp(self, paper_session, space,
                                            results):
        fixed = _optimize(paper_session, paper_session.constraint("hvt"),
                          "pruned", space)
        assert results["pruned"].metrics.edp <= fixed.metrics.edp


class TestRequirementAndSigma:
    def test_secded_relaxes_below_delta(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        req = constraint.requirement(0.55, 0.0)
        assert 0.0 < req < paper_session.delta
        assert req == pytest.approx(
            paper_session.delta
            - constraint.delta_z * constraint.sigma(0.55, 0.0))

    def test_requirement_floors_at_zero(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        constraint.delta = 1e-4   # floor far below the relaxation
        assert constraint.requirement(0.55, 0.0) == 0.0

    def test_sigma_memoized_per_rail_pair(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        a = constraint.sigma(0.55, 0.0)
        assert len(constraint._stat_cache) == 1
        assert constraint.sigma(0.55, 0.0) == a
        assert len(constraint._stat_cache) == 1
        constraint.sigma(0.55, -0.05)
        assert len(constraint._stat_cache) == 2

    def test_margin_budget_fraction_tightens(self, paper_session):
        full = _target_constraint(paper_session, "secded")
        half = _target_constraint(paper_session, "secded",
                                  margin_budget_fraction=0.5)
        assert 0.0 < half.delta_z < full.delta_z

    def test_failure_estimate_and_array_yield(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        est = constraint.failure_estimate(0.55, 0.0)
        assert 0.0 <= est.p_fail < 1.0
        coded, uncoded = constraint.array_yield(0.55, 0.0)
        assert uncoded <= coded <= 1.0


class TestMemoRoundtrip:
    def test_sigma_key_exported_and_reseeded(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        sigma = constraint.sigma(0.55, 0.0)
        memo = constraint.export_margin_memo()
        assert "sigma" in memo
        assert constraint._stat_cache.keys() == memo["sigma"].keys()

        fresh = _target_constraint(paper_session, "secded",
                                   n_samples=60)
        fresh.seed_margin_memo(memo)
        assert fresh._stat_cache == constraint._stat_cache
        # A seeded constraint answers from the memo without rerunning.
        import repro.cell.montecarlo as mc

        def _boom(*args, **kwargs):        # pragma: no cover
            raise AssertionError("Monte Carlo re-ran on a seeded memo")

        original = mc.run_cell_montecarlo
        mc.run_cell_montecarlo = _boom
        try:
            assert fresh.sigma(0.55, 0.0) == sigma
        finally:
            mc.run_cell_montecarlo = original

    def test_base_margin_memo_still_roundtrips(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        constraint.margins(0.55, 0.0, 0.55)
        memo = constraint.export_margin_memo()
        fresh = _target_constraint(paper_session, "secded",
                                   n_samples=60)
        fresh.seed_margin_memo(memo)
        assert fresh.margins(0.55, 0.0, 0.55) \
            == constraint.margins(0.55, 0.0, 0.55)


class TestSharedShiftMatrix:
    """One Vt shift draw feeds every rail pair and every iteration."""

    def test_one_draw_shared_across_rail_pairs(self, paper_session):
        from repro.cell.montecarlo import sample_shift_matrix

        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        matrix = constraint.shift_matrix
        assert constraint.shift_matrix is matrix
        assert np.array_equal(matrix, sample_shift_matrix(60, seed=0))

        constraint.sigma(0.55, 0.0)
        batched = constraint._mc_cell
        assert batched is not None
        constraint.sigma(0.55, -0.05)
        assert constraint._mc_cell is batched
        assert constraint._shift_matrix is matrix

    def test_stats_bit_identical_to_montecarlo_engine(self,
                                                      paper_session):
        from repro.cell.bias import CellBias
        from repro.cell.montecarlo import run_cell_montecarlo

        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        mu, sigma, tail, n = constraint.min_margin_stats(0.55, 0.0)

        vdd = paper_session.library.vdd
        result = run_cell_montecarlo(
            constraint.base.cell, n_samples=60, seed=0, vdd=vdd,
            read_bias=CellBias.read(vdd=vdd, v_ddc=0.55, v_ssc=0.0),
            metrics=("hsnm", "rsnm"), snm_points=41, engine="batched",
        )
        values = np.minimum(result.metric("hsnm").values,
                            result.metric("rsnm").values)
        assert n == values.size
        assert mu == float(np.mean(values))
        assert sigma == float(np.std(values, ddof=1))
        assert tail == int(np.sum(values < 0.0))


class TestSampledRelaxation:
    """The rare-event sampler behind the margin-floor solve."""

    def test_unknown_sampler_rejected(self, paper_session):
        with pytest.raises(ValueError):
            _target_constraint(paper_session, "secded", sampler="bogus")

    def test_gaussian_mode_has_no_tail_estimate(self, paper_session):
        constraint = _target_constraint(paper_session, "secded",
                                        n_samples=60)
        with pytest.raises(ValueError):
            constraint.tail_estimate(0.55, 0.0)

    def test_unconverged_budget_falls_back_to_gaussian(self,
                                                       paper_session):
        constraint = _target_constraint(
            paper_session, "secded", n_samples=60, sampler="shifted",
            ci_target=0.01, max_samples=128,
        )
        relax = constraint.relaxation(0.55, 0.0)
        assert relax == constraint.delta_z * constraint.sigma(0.55, 0.0)
        estimate = constraint._relax_cache[(0.55, 0.0)][1]
        assert estimate is not None
        assert not estimate.converged

    def test_buffer_reused_across_floor_queries(self, paper_session):
        constraint = _target_constraint(
            paper_session, "secded", n_samples=60, sampler="shifted",
            ci_target=0.5, max_samples=256,
        )
        relax = constraint.relaxation(0.55, 0.0)
        buffer = constraint._buffer_cache[(0.55, 0.0)]
        assert buffer.search is not None
        evals = buffer.solver.n_evals
        # Repeated relaxations, reported tails, and fresh floor
        # bisections all ride the cached samples — zero re-solves.
        assert constraint.relaxation(0.55, 0.0) == relax
        estimate = constraint.tail_estimate(0.55, 0.0)
        buffer.floor_for(1e-3)
        assert buffer.solver.n_evals == evals
        assert estimate.n_samples >= 2 * buffer.block
        assert 0.0 <= relax
        assert constraint.requirement(0.55, 0.0) <= constraint.delta

    def test_sampled_relaxation_memo_roundtrip(self, paper_session):
        constraint = _target_constraint(
            paper_session, "secded", n_samples=60, sampler="shifted",
            ci_target=0.5, max_samples=256,
        )
        relax = constraint.relaxation(0.55, 0.0)
        memo = constraint.export_margin_memo()
        assert memo["relaxation"] == {(0.55, 0.0): relax}

        fresh = _target_constraint(
            paper_session, "secded", n_samples=60, sampler="shifted",
            ci_target=0.5, max_samples=256,
        )
        fresh.seed_margin_memo(memo)
        assert fresh.relaxation(0.55, 0.0) == relax
        # Answered from the memo: no buffer was ever built.
        assert fresh._buffer_cache == {}


class TestCodeResolution:
    def test_string_code_resolved(self, paper_session):
        constraint = _target_constraint(paper_session, "secded")
        assert constraint.code.name == "secded"
        assert constraint.code.check_bits == 8

    def test_code_object_passthrough(self, paper_session):
        code = make_code("secded-x2", 64)
        constraint = _target_constraint(paper_session, code)
        assert constraint.code is code
        assert constraint.n_words == CAPACITY_BITS // 64
