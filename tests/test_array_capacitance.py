"""Table-1 interconnect capacitances: hand-checked values and
monotonicity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import (
    ArrayGeometry,
    ArrayOrganization,
    DeviceCaps,
    all_capacitances,
    c_bl,
    c_col,
    c_cvdd,
    c_cvss,
    c_wl,
)

GEO = ArrayGeometry()
CAPS = DeviceCaps(c_gn=0.07e-15, c_gp=0.07e-15,
                  c_dn=0.05e-15, c_dp=0.05e-15)


def org(n_r=64, n_c=64):
    return ArrayOrganization(n_r=n_r, n_c=n_c)


def test_c_cvdd_hand_formula():
    o = org(n_c=32)
    expected = 32 * (GEO.c_width + 2 * CAPS.c_dp) + 2 * 20 * CAPS.c_dp
    assert c_cvdd(GEO, CAPS, o) == pytest.approx(expected)


def test_c_cvss_hand_formula():
    o = org(n_c=32)
    expected = 32 * (GEO.c_width + 2 * CAPS.c_dn) + 2 * 20 * CAPS.c_dn
    assert c_cvss(GEO, CAPS, o) == pytest.approx(expected)


def test_c_wl_hand_formula():
    o = org(n_c=128)
    expected = 128 * (GEO.c_width + 2 * CAPS.c_gn) + 27 * (
        CAPS.c_dn + CAPS.c_dp
    )
    assert c_wl(GEO, CAPS, o) == pytest.approx(expected)


def test_c_col_zero_without_mux():
    assert c_col(GEO, CAPS, org(n_c=64), n_wr=5) == 0.0
    assert c_col(GEO, CAPS, org(n_c=16), n_wr=5) == 0.0


def test_c_col_hand_formula_with_mux():
    o = org(n_c=256)
    expected = (
        256 * GEO.c_width
        + 27 * (CAPS.c_dn + CAPS.c_dp)
        + 2 * 64 * 3 * (CAPS.c_gn + CAPS.c_gp)
    )
    assert c_col(GEO, CAPS, o, n_wr=3) == pytest.approx(expected)


def test_c_bl_case_split():
    """Without a mux the SA input cap replaces one TG pair."""
    narrow = org(n_c=64)
    wide = org(n_c=128)
    common = 64 * (GEO.c_height + CAPS.c_dn) + (4 + 1) * CAPS.c_dp
    assert c_bl(GEO, CAPS, narrow, n_pre=4, n_wr=2) == pytest.approx(
        common + 2 * (CAPS.c_dn + CAPS.c_dp) + CAPS.c_dp
    )
    assert c_bl(GEO, CAPS, wide, n_pre=4, n_wr=2) == pytest.approx(
        common + 2 * 2 * (CAPS.c_dn + CAPS.c_dp)
    )


@settings(max_examples=40, deadline=None)
@given(
    log_r=st.integers(min_value=1, max_value=10),
    n_pre=st.integers(min_value=1, max_value=50),
    n_wr=st.integers(min_value=1, max_value=20),
)
def test_c_bl_monotone_in_rows_and_fins(log_r, n_pre, n_wr):
    o_small = org(n_r=2 ** log_r)
    o_big = org(n_r=2 ** min(log_r + 1, 10))
    base = c_bl(GEO, CAPS, o_small, n_pre, n_wr)
    assert c_bl(GEO, CAPS, o_big, n_pre, n_wr) >= base
    assert c_bl(GEO, CAPS, o_small, n_pre + 1, n_wr) > base
    assert c_bl(GEO, CAPS, o_small, n_pre, n_wr + 1) > base


@settings(max_examples=30, deadline=None)
@given(log_c=st.integers(min_value=1, max_value=9))
def test_row_rails_monotone_in_columns(log_c):
    o_small = org(n_c=2 ** log_c)
    o_big = org(n_c=2 ** (log_c + 1))
    assert c_cvdd(GEO, CAPS, o_big) > c_cvdd(GEO, CAPS, o_small)
    assert c_wl(GEO, CAPS, o_big) > c_wl(GEO, CAPS, o_small)


def test_vectorized_fin_grids():
    n_pre = np.arange(1, 6)
    values = c_bl(GEO, CAPS, org(), n_pre=n_pre, n_wr=1)
    assert values.shape == n_pre.shape
    assert np.all(np.diff(values) > 0)


def test_all_capacitances_keys():
    caps = all_capacitances(GEO, CAPS, org(n_c=256), 4, 2)
    assert set(caps) == {"CVDD", "CVSS", "WL", "COL", "BL"}
    assert all(v >= 0 for v in caps.values())


def test_device_caps_from_library(library):
    caps = DeviceCaps.from_library(library)
    assert caps.c_gn == library.nfet_lvt.c_gate
    assert caps.c_dp == library.pfet_lvt.c_drain
