"""Pareto-front extraction and weighted optima."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt import best_weighted, pareto_front
from repro.opt.results import LandscapePoint


def point(d, e, n_r=64):
    return LandscapePoint(n_r=n_r, v_ssc=0.0, n_pre=1, n_wr=1,
                          edp=d * e, d_array=d, e_total=e)


def test_front_filters_dominated_points():
    points = [point(1.0, 4.0), point(2.0, 2.0), point(4.0, 1.0),
              point(3.0, 3.0)]  # the last one is dominated
    front = pareto_front(points)
    assert len(front) == 3
    assert all(not (p.d_array == 3.0 and p.e_total == 3.0) for p in front)


def test_front_sorted_by_delay():
    front = pareto_front([point(4.0, 1.0), point(1.0, 4.0),
                          point(2.0, 2.0)])
    delays = [p.d_array for p in front]
    assert delays == sorted(delays)


def test_single_point_front():
    front = pareto_front([point(1.0, 1.0)])
    assert len(front) == 1
    assert front[0].edp == pytest.approx(1.0)


points_strategy = st.lists(
    st.tuples(st.floats(min_value=0.1, max_value=10.0),
              st.floats(min_value=0.1, max_value=10.0)),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(points_strategy)
def test_front_is_mutually_non_dominated(raw):
    """Property: no front member dominates another."""
    front = pareto_front([point(d, e) for d, e in raw])
    for a in front:
        for b in front:
            if a is b:
                continue
            dominates = (a.d_array <= b.d_array and a.e_total <= b.e_total
                         and (a.d_array < b.d_array
                              or a.e_total < b.e_total))
            assert not dominates


@settings(max_examples=60, deadline=None)
@given(points_strategy)
def test_every_point_dominated_or_on_front(raw):
    """Property: each input point is beaten (weakly) by a front point."""
    points = [point(d, e) for d, e in raw]
    front = pareto_front(points)
    for p in points:
        assert any(f.d_array <= p.d_array + 1e-12
                   and f.e_total <= p.e_total + 1e-12 for f in front)


def test_best_weighted_recovers_edp_optimum():
    points = [point(1.0, 4.0), point(2.0, 1.5), point(4.0, 1.0)]
    front = pareto_front(points)
    best = best_weighted(front, 1.0, 1.0)
    assert best.edp == pytest.approx(min(p.edp for p in points))


def test_best_weighted_exponents_shift_choice():
    points = [point(1.0, 5.0), point(5.0, 1.0)]
    front = pareto_front(points)
    fast = best_weighted(front, energy_exponent=1.0, delay_exponent=3.0)
    green = best_weighted(front, energy_exponent=3.0, delay_exponent=1.0)
    assert fast.d_array < green.d_array


def test_best_weighted_empty_front_raises():
    with pytest.raises(ValueError):
        best_weighted([])
