"""Pareto-front extraction, incremental maintenance, weighted optima."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import (
    CAPACITIES_BYTES,
    FLAVORS,
    METHODS,
)
from repro.opt import (
    DesignSpace,
    ExhaustiveOptimizer,
    ParetoFrontBuilder,
    best_weighted,
    make_policy,
    pareto_front,
)
from repro.opt.results import LandscapePoint

STUDY_CELLS = [
    (flavor, method, capacity)
    for flavor in FLAVORS
    for method in METHODS
    for capacity in CAPACITIES_BYTES
]


def point(d, e, n_r=64):
    return LandscapePoint(n_r=n_r, v_ssc=0.0, n_pre=1, n_wr=1,
                          edp=d * e, d_array=d, e_total=e)


def test_front_filters_dominated_points():
    points = [point(1.0, 4.0), point(2.0, 2.0), point(4.0, 1.0),
              point(3.0, 3.0)]  # the last one is dominated
    front = pareto_front(points)
    assert len(front) == 3
    assert all(not (p.d_array == 3.0 and p.e_total == 3.0) for p in front)


def test_front_sorted_by_delay():
    front = pareto_front([point(4.0, 1.0), point(1.0, 4.0),
                          point(2.0, 2.0)])
    delays = [p.d_array for p in front]
    assert delays == sorted(delays)


def test_single_point_front():
    front = pareto_front([point(1.0, 1.0)])
    assert len(front) == 1
    assert front[0].edp == pytest.approx(1.0)


def test_empty_landscape_raises():
    with pytest.raises(ValueError):
        pareto_front([])


def test_equal_delay_keeps_lowest_energy():
    front = pareto_front([point(1.0, 3.0), point(1.0, 2.0),
                          point(2.0, 1.0)])
    assert [(p.d_array, p.e_total) for p in front] == [(1.0, 2.0),
                                                       (2.0, 1.0)]


def test_equal_energy_keeps_lowest_delay():
    front = pareto_front([point(3.0, 1.0), point(2.0, 1.0)])
    assert [(p.d_array, p.e_total) for p in front] == [(2.0, 1.0)]


def test_exact_duplicates_keep_first_in_visit_order():
    # Two coincident (D, E) points must resolve to the *first* one the
    # loop engine would have visited — the documented tie rule.
    first = point(1.0, 1.0, n_r=8)
    second = point(1.0, 1.0, n_r=16)
    front = pareto_front([first, second])
    assert len(front) == 1
    assert front[0].n_r == 8
    # ...and the order of arrival, not the coordinates, decides.
    front = pareto_front([second, first])
    assert front[0].n_r == 16


points_strategy = st.lists(
    st.tuples(st.floats(min_value=0.1, max_value=10.0),
              st.floats(min_value=0.1, max_value=10.0)),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(points_strategy)
def test_front_is_mutually_non_dominated(raw):
    """Property: no front member dominates another."""
    front = pareto_front([point(d, e) for d, e in raw])
    for a in front:
        for b in front:
            if a is b:
                continue
            dominates = (a.d_array <= b.d_array and a.e_total <= b.e_total
                         and (a.d_array < b.d_array
                              or a.e_total < b.e_total))
            assert not dominates


@settings(max_examples=60, deadline=None)
@given(points_strategy)
def test_every_point_dominated_or_on_front(raw):
    """Property: each input point is beaten (weakly) by a front point."""
    points = [point(d, e) for d, e in raw]
    front = pareto_front(points)
    for p in points:
        assert any(f.d_array <= p.d_array + 1e-12
                   and f.e_total <= p.e_total + 1e-12 for f in front)


def test_best_weighted_recovers_edp_optimum():
    points = [point(1.0, 4.0), point(2.0, 1.5), point(4.0, 1.0)]
    front = pareto_front(points)
    best = best_weighted(front, 1.0, 1.0)
    assert best.edp == pytest.approx(min(p.edp for p in points))


def test_best_weighted_exponents_shift_choice():
    points = [point(1.0, 5.0), point(5.0, 1.0)]
    front = pareto_front(points)
    fast = best_weighted(front, energy_exponent=1.0, delay_exponent=3.0)
    green = best_weighted(front, energy_exponent=3.0, delay_exponent=1.0)
    assert fast.d_array < green.d_array


def test_best_weighted_empty_front_raises():
    with pytest.raises(ValueError):
        best_weighted([])


# ---------------------------------------------------------------------------
# Incremental front maintenance (ParetoFrontBuilder)
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(points_strategy)
def test_builder_matches_batch_front(raw):
    """Property: inserting one-by-one equals the batch extraction."""
    points = [point(d, e) for d, e in raw]
    builder = ParetoFrontBuilder()
    for p in points:
        builder.insert(p)
    assert builder.front() == pareto_front(points)


def test_builder_first_wins_on_exact_ties():
    builder = ParetoFrontBuilder()
    assert builder.insert(point(1.0, 1.0, n_r=8)) is True
    assert builder.insert(point(1.0, 1.0, n_r=16)) is False
    assert [p.n_r for p in builder.front()] == [8]


def test_builder_dominated_mask():
    import numpy as np

    builder = ParetoFrontBuilder()
    empty = builder.dominated_mask(np.array([1.0]), np.array([1.0]))
    assert not empty.any()
    builder.insert(point(2.0, 2.0))
    mask = builder.dominated_mask(np.array([1.0, 2.0, 3.0]),
                                  np.array([3.0, 2.0, 3.0]))
    # (1,3) is incomparable; (2,2) and (3,3) are weakly dominated.
    assert mask.tolist() == [False, True, True]


# ---------------------------------------------------------------------------
# Engine-level Pareto sweeps (ExhaustiveOptimizer.pareto)
# ---------------------------------------------------------------------------

def _pareto(paper_session, flavor, method, capacity_bytes, engine):
    optimizer = ExhaustiveOptimizer(
        paper_session.model(flavor), DesignSpace(),
        paper_session.constraint(flavor),
    )
    policy = make_policy(method, paper_session.yield_levels(flavor))
    return optimizer.pareto(capacity_bytes * 8, policy, engine=engine)


@pytest.mark.parametrize("flavor,method,capacity_bytes", STUDY_CELLS)
def test_pruned_pareto_matches_landscape_front(paper_session, flavor,
                                               method, capacity_bytes):
    """The incremental pruned front equals the batch front of the full
    landscape (computed by the fused fallback) on every study cell."""
    pruned = _pareto(paper_session, flavor, method, capacity_bytes,
                     "pruned")
    fused = _pareto(paper_session, flavor, method, capacity_bytes,
                    "fused")
    assert pruned.front == fused.front
    assert pruned.n_tiles == fused.n_tiles
    assert pruned.engine == "pruned" and fused.engine == "fused"
    assert fused.tiles_pruned == 0
    assert 0 <= pruned.tiles_pruned < pruned.n_tiles
    assert pruned.n_evaluated <= fused.n_evaluated


def test_pareto_front_members_are_feasible_landscape_points(
        paper_session):
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    result = optimizer.optimize(16384 * 8, policy, keep_landscape=True,
                                engine="fused")
    sweep = optimizer.pareto(16384 * 8, policy, engine="pruned")
    landscape = {(p.n_r, p.v_ssc, p.n_pre, p.n_wr): p
                 for p in result.landscape}
    for p in sweep.front:
        lp = landscape[(p.n_r, p.v_ssc, p.n_pre, p.n_wr)]
        assert (lp.d_array, lp.e_total) == (p.d_array, p.e_total)


def test_best_weighted_unit_exponents_recover_edp_optimum(paper_session):
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    sweep = optimizer.pareto(16384 * 8, policy, engine="pruned")
    best = best_weighted(sweep.front, 1.0, 1.0)
    direct = optimizer.optimize(16384 * 8, policy, engine="fused")
    assert best.edp == direct.metrics.edp
    assert best.n_r == direct.design.n_r
    assert best.n_pre == direct.design.n_pre
    assert best.n_wr == direct.design.n_wr


def test_pareto_capacity_bytes_property(paper_session):
    sweep = _pareto(paper_session, "hvt", "M2", 128, "pruned")
    assert sweep.capacity_bytes == 128
    assert sweep.capacity_bits == 128 * 8
    assert sweep.flavor == "hvt" and sweep.method == "M2"
