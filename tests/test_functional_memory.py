"""FunctionalSRAM: storage correctness and energy/time accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import ArrayConfig, DesignPoint, SRAMArrayModel
from repro.errors import DesignSpaceError
from repro.functional import FunctionalSRAM


@pytest.fixture(scope="module")
def metrics(hvt_char):
    model = SRAMArrayModel(hvt_char, ArrayConfig())
    design = DesignPoint(n_r=128, n_c=64, n_pre=8, n_wr=2,
                         v_ddc=0.55, v_ssc=-0.2, v_wl=0.55)
    return model.evaluate(8192, design)


@pytest.fixture()
def memory(metrics, hvt_char):
    return FunctionalSRAM(metrics, hvt_char.p_leak_sram, word_bits=64)


def test_geometry(memory):
    assert len(memory) == 8192 // 64
    assert memory.n_words == 128


def test_read_unwritten_returns_zero(memory):
    assert memory.read(5) == 0
    assert not memory.is_written(5)


def test_write_then_read(memory):
    memory.write(42, 0x1234_5678_9ABC_DEF0)
    assert memory.read(42) == 0x1234_5678_9ABC_DEF0
    assert memory.is_written(42)


def test_value_masked_to_word(metrics, hvt_char):
    memory = FunctionalSRAM(metrics, hvt_char.p_leak_sram, word_bits=64)
    memory.write(0, (1 << 70) | 0xFF)
    assert memory.read(0) == 0xFF


def test_address_bounds(memory):
    with pytest.raises(IndexError):
        memory.read(128)
    with pytest.raises(IndexError):
        memory.write(-1, 0)


def test_decode_row_mapping(memory):
    row, word = memory.decode(0)
    assert (row, word) == (0, 0)
    row, word = memory.decode(memory.org.words_per_row)
    assert (row, word) == (1, 0)


def test_accounting_per_access(memory, metrics):
    memory.read(0)
    memory.write(1, 7)
    stats = memory.stats
    assert stats.n_reads == 1 and stats.n_writes == 1
    assert stats.e_read == pytest.approx(float(metrics.e_sw_rd))
    assert stats.e_write == pytest.approx(float(metrics.e_sw_wr))
    assert stats.busy_time == pytest.approx(
        float(metrics.d_rd) + float(metrics.d_wr)
    )


def test_idle_accumulates_leakage_only(memory):
    e_before = memory.total_energy
    memory.idle(1e-6)
    assert memory.stats.e_dynamic == 0.0
    assert memory.total_energy - e_before == pytest.approx(
        memory.leakage_power * 1e-6
    )
    with pytest.raises(ValueError):
        memory.idle(-1.0)


def test_analytical_energy_matches_paper_blend(memory, metrics):
    """At alpha = beta = 0.5 the analytic per-access energy times the
    access count reproduces Eq. (3)-(5) (with D_array replaced by the
    beta-weighted access time)."""
    per_access = memory.analytical_energy_per_access(beta=0.5, alpha=0.5)
    e_sw = 0.5 * float(metrics.e_sw_rd) + 0.5 * float(metrics.e_sw_wr)
    d_acc = 0.5 * float(metrics.d_rd) + 0.5 * float(metrics.d_wr)
    expected = e_sw + memory.leakage_power * d_acc / 0.5
    assert per_access == pytest.approx(expected)


def test_reset_stats_keeps_data(memory):
    memory.write(3, 99)
    memory.reset_stats()
    assert memory.stats.n_accesses == 0
    assert memory.read(3) == 99


def test_rejects_grid_metrics(hvt_char):
    model = SRAMArrayModel(hvt_char, ArrayConfig())
    design = DesignPoint(n_r=128, n_c=64, n_pre=np.array([1, 2]),
                         n_wr=np.array([1, 1]), v_ddc=0.55, v_ssc=-0.2,
                         v_wl=0.55)
    grid_metrics = model.evaluate(8192, design)
    with pytest.raises(DesignSpaceError):
        FunctionalSRAM(grid_metrics, 1e-10)


def test_last_write_wins_property(metrics, hvt_char):
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=127),
                  st.integers(min_value=0, max_value=2**64 - 1)),
        min_size=1, max_size=40,
    ))
    def run(writes):
        memory = FunctionalSRAM(metrics, hvt_char.p_leak_sram)
        expected = {}
        for address, value in writes:
            memory.write(address, value)
            expected[address] = value
        for address, value in expected.items():
            assert memory.read(address) == value

    run()
