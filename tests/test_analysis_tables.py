"""Text-table rendering."""

from repro.analysis import paper_vs_measured, render_dict_table, render_table


def test_render_table_alignment():
    text = render_table(["a", "bb"], [[1, 22.5], ["x", None]])
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert "22.5" in text
    assert "-" in lines[1]


def test_render_table_title():
    text = render_table(["x"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_render_table_bool_and_int_formatting():
    text = render_table(["flag", "count"], [[True, 12], [False, 3]])
    assert "yes" in text and "no" in text
    assert "12" in text


def test_render_dict_table():
    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]
    text = render_dict_table(rows)
    assert "a" in text.splitlines()[0]
    assert "4" in text


def test_render_dict_table_empty():
    assert render_dict_table([], title="empty") == "empty"


def test_render_dict_table_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = render_dict_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_paper_vs_measured_deviation():
    text = paper_vs_measured([("metric", 10.0, 11.0)])
    assert "+10.0%" in text


def test_paper_vs_measured_handles_missing_reference():
    text = paper_vs_measured([("metric", None, 11.0)])
    assert "-" in text
