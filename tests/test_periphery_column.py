"""Column-level validation of the analytical bitline-delay model."""

import pytest

from repro.periphery.column import (
    build_read_column_circuit,
    column_bitline_capacitance,
    measure_read_column,
)


def test_lumped_capacitance_scales_with_rows(library):
    c64 = column_bitline_capacitance(library, 64, n_pre=4)
    c256 = column_bitline_capacitance(library, 256, n_pre=4)
    assert c256 > 3.0 * c64


def test_circuit_structure(library, hvt_cell):
    circuit, bias = build_read_column_circuit(library, hvt_cell, 64)
    circuit.compile()
    assert "bl" in circuit.node_names
    assert bias.v_bl == library.vdd


def test_analytic_matches_simulation_no_assist(library, hvt_cell):
    m = measure_read_column(library, hvt_cell, n_rows=64)
    assert m.agreement == pytest.approx(1.0, abs=0.12)


def test_analytic_matches_simulation_with_assists(library, hvt_cell):
    m = measure_read_column(library, hvt_cell, n_rows=64,
                            v_ddc=0.55, v_ssc=-0.24)
    assert m.agreement == pytest.approx(1.0, abs=0.15)


def test_simulated_negative_gnd_speedup(library, hvt_cell):
    base = measure_read_column(library, hvt_cell, n_rows=64, v_ddc=0.55)
    fast = measure_read_column(library, hvt_cell, n_rows=64,
                               v_ddc=0.55, v_ssc=-0.24)
    assert fast.simulated_delay < 0.4 * base.simulated_delay


def test_simulated_delay_scales_with_rows(library, hvt_cell):
    short = measure_read_column(library, hvt_cell, n_rows=64,
                                v_ddc=0.55)
    tall = measure_read_column(library, hvt_cell, n_rows=256,
                               v_ddc=0.55)
    assert 3.0 < tall.simulated_delay / short.simulated_delay < 5.0
