"""Read current: DC read state, assist response, grids."""

import numpy as np
import pytest

from repro.cell import CellBias, read_current, read_current_grid, read_state

VDD = 0.45


def test_read_state_disturb(hvt_cell):
    state = read_state(hvt_cell, vdd=VDD)
    assert not state.flipped
    assert 0.0 < state.v_q < 0.2          # read disturb on the '0' node
    assert state.v_qb > 0.85 * VDD        # '1' node barely droops
    assert state.i_read > 0


def test_read_current_magnitude(hvt_cell):
    """The paper's HVT fit predicts ~5.7 uA with no assist."""
    i = read_current(hvt_cell, vdd=VDD)
    assert 2e-6 < i < 12e-6


def test_lvt_reads_about_twice_hvt(hvt_cell, lvt_cell):
    ratio = read_current(lvt_cell, vdd=VDD) / read_current(hvt_cell, vdd=VDD)
    assert ratio == pytest.approx(2.0, rel=0.2)


def test_negative_gnd_boosts_read_current(hvt_cell):
    base = read_current(hvt_cell, vdd=VDD, v_ddc=0.55)
    boosted = read_current(hvt_cell, vdd=VDD, v_ddc=0.55, v_ssc=-0.24)
    assert boosted / base > 3.0   # paper: 4.3x


def test_read_current_monotone_in_v_ssc(hvt_cell):
    currents = [
        read_current(hvt_cell, vdd=VDD, v_ddc=0.55, v_ssc=v)
        for v in (0.0, -0.08, -0.16, -0.24)
    ]
    assert all(a < b for a, b in zip(currents, currents[1:]))


def test_vdd_boost_barely_moves_read_current(hvt_cell):
    """Why the paper sets V_DDC to its minimum: boosting the cell rail
    strengthens the pull-down but not the access device, so I_read is
    nearly flat in V_DDC (no read-delay benefit)."""
    base = read_current(hvt_cell, vdd=VDD, v_ddc=0.45)
    boosted = read_current(hvt_cell, vdd=VDD, v_ddc=0.65)
    gain_from_boost = boosted / base
    gain_from_neg_gnd = (
        read_current(hvt_cell, vdd=VDD, v_ddc=0.45, v_ssc=-0.20) / base
    )
    assert gain_from_boost < 1.5
    assert gain_from_neg_gnd > 2.0 * gain_from_boost


def test_read_current_grid_shape(hvt_cell):
    grid = read_current_grid(hvt_cell, [0.45, 0.55], [-0.1, 0.0], vdd=VDD)
    assert grid.shape == (2, 2)
    assert np.all(grid > 0)
    # More negative V_SSC (first column) gives more current.
    assert grid[0, 0] > grid[0, 1]


def test_custom_bias_object(hvt_cell):
    bias = CellBias.read(vdd=VDD, v_ddc=0.55, v_ssc=-0.1)
    direct = read_current(hvt_cell, bias=bias)
    via_args = read_current(hvt_cell, vdd=VDD, v_ddc=0.55, v_ssc=-0.1)
    assert direct == pytest.approx(via_args, rel=1e-6)
