"""Trace replay and workload reporting."""

import pytest

from repro.array import ArrayConfig, DesignPoint, SRAMArrayModel
from repro.functional import (
    FunctionalSRAM,
    replay,
    uniform_trace,
)


@pytest.fixture(scope="module")
def memory(hvt_char):
    model = SRAMArrayModel(hvt_char, ArrayConfig())
    design = DesignPoint(n_r=128, n_c=64, n_pre=8, n_wr=2,
                         v_ddc=0.55, v_ssc=-0.2, v_wl=0.55)
    metrics = model.evaluate(8192, design)
    return FunctionalSRAM(metrics, hvt_char.p_leak_sram)


def test_replay_counts_and_beta(memory):
    trace = uniform_trace(400, memory.n_words, read_fraction=0.7, seed=0)
    report = replay(memory, trace, alpha=0.5)
    assert report.n_accesses == 400
    expected_beta = sum(1 for a in trace if a.op == "r") / 400
    assert report.measured_beta == pytest.approx(expected_beta)


def test_replay_alpha_is_exact(memory):
    trace = uniform_trace(200, memory.n_words, seed=1)
    report = replay(memory, trace, alpha=0.25)
    assert report.measured_alpha == pytest.approx(0.25, rel=1e-9)


def test_replay_full_activity_has_no_idle(memory):
    trace = uniform_trace(50, memory.n_words, seed=2)
    report = replay(memory, trace, alpha=1.0)
    assert report.idle_time == 0.0
    assert report.measured_alpha == 1.0


def test_measured_energy_matches_analytical_blend(memory):
    """The transaction-level accounting reproduces Eq. (3)-(5)."""
    trace = uniform_trace(1000, memory.n_words, read_fraction=0.5, seed=3)
    report = replay(memory, trace, alpha=0.5)
    assert report.model_agreement == pytest.approx(1.0, rel=1e-9)


def test_idler_workload_is_leakier(memory):
    trace = uniform_trace(300, memory.n_words, seed=4)
    busy = replay(memory, trace, alpha=0.9)
    idle = replay(memory, trace, alpha=0.05)
    assert idle.leakage_fraction > busy.leakage_fraction
    assert idle.energy_per_access > busy.energy_per_access
    # Dynamic energy is workload-determined, not activity-determined.
    assert idle.e_read == pytest.approx(busy.e_read)


def test_replay_validation(memory):
    trace = uniform_trace(10, memory.n_words, seed=5)
    with pytest.raises(ValueError):
        replay(memory, trace, alpha=0.0)
    with pytest.raises(ValueError):
        replay(memory, [], alpha=0.5)
    with pytest.raises(TypeError):
        replay("not a memory", trace)


def test_report_summary_text(memory):
    trace = uniform_trace(20, memory.n_words, seed=6)
    report = replay(memory, trace, alpha=0.5)
    text = report.summary()
    assert "accesses" in text and "leakage" in text
