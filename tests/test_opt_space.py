"""Design space: the paper's Section-5 ranges."""

import pytest

from repro.errors import DesignSpaceError
from repro.opt import DesignSpace


def test_default_ranges_match_paper():
    space = DesignSpace()
    assert space.v_ssc_values[0] == 0.0
    assert space.v_ssc_values[-1] == pytest.approx(-0.240)
    assert len(space.v_ssc_values) == 25
    assert space.n_pre_max == 50
    assert space.n_wr_max == 20
    assert space.n_r_min == 2 and space.n_r_max == 1024


def test_row_counts_divide_capacity():
    space = DesignSpace()
    rows = space.row_counts(1024)  # 128B
    assert all(1024 % n_r == 0 for n_r in rows)
    assert rows[0] == 2
    assert rows[-1] == 1024  # n_c = 1 allowed? capacity/n_r >= 1


def test_row_counts_respect_column_cap():
    space = DesignSpace()
    rows = space.row_counts(131072)  # 16KB
    # n_c <= 1024 forces n_r >= 128.
    assert min(rows) == 128
    assert max(rows) == 1024


def test_space_size_counts_raw_points():
    space = DesignSpace()
    n_rows = len(space.row_counts(8192))
    assert space.size(8192) == n_rows * 25 * 50 * 20


def test_fin_value_arrays():
    space = DesignSpace()
    assert list(space.n_pre_values[:3]) == [1, 2, 3]
    assert len(space.n_wr_values) == 20


def test_invalid_bounds_rejected():
    with pytest.raises(DesignSpaceError):
        DesignSpace(n_r_min=3)
    with pytest.raises(DesignSpaceError):
        DesignSpace(n_r_min=64, n_r_max=32)
    with pytest.raises(DesignSpaceError):
        DesignSpace(n_pre_max=0)


def test_impossible_capacity_raises():
    space = DesignSpace(n_r_min=1024, n_r_max=1024)
    with pytest.raises(DesignSpaceError):
        space.row_counts(512)
