"""Durable job queue: lifecycle, leases, crash requeue, durability."""

import threading
import time

import pytest

from repro.errors import JobError
from repro.jobs import JobQueue, JOB_STATES


@pytest.fixture()
def queue(tmp_path):
    return JobQueue(str(tmp_path / "jobs.db"))


def test_submit_and_get(queue):
    job_id = queue.submit("study", {"capacities": [128]})
    job = queue.get(job_id)
    assert job.id == job_id
    assert job.kind == "study"
    assert job.spec == {"capacities": [128]}
    assert job.state == "queued"
    assert job.attempts == 0
    assert job.worker is None
    assert not job.terminal


def test_get_missing_raises(queue):
    with pytest.raises(JobError) as excinfo:
        queue.get("job-nope")
    assert excinfo.value.job_id == "job-nope"


def test_counts_zero_filled(queue):
    counts = queue.counts()
    assert set(counts) == set(JOB_STATES)
    assert all(value == 0 for value in counts.values())
    queue.submit("study", {})
    assert queue.counts()["queued"] == 1


def test_claim_empty_queue_returns_none(queue):
    assert queue.claim("w1") is None


def test_claim_marks_running_with_lease(queue):
    job_id = queue.submit("study", {})
    job = queue.claim("w1", lease_seconds=30.0)
    assert job.id == job_id
    assert job.state == "running"
    assert job.worker == "w1"
    assert job.attempts == 1
    assert job.lease_expires_at > time.time()
    # Nothing else to claim while the lease is live.
    assert queue.claim("w2") is None


def test_claim_fifo_within_priority(queue):
    first = queue.submit("study", {"n": 1})
    second = queue.submit("study", {"n": 2})
    assert queue.claim("w").id == first
    assert queue.claim("w").id == second


def test_priority_beats_age(queue):
    queue.submit("study", {"n": "old"})
    urgent = queue.submit("study", {"n": "urgent"}, priority=10)
    assert queue.claim("w").id == urgent


def test_heartbeat_extends_lease_and_records_progress(queue):
    job_id = queue.submit("study", {})
    queue.claim("w1", lease_seconds=5.0)
    assert queue.heartbeat(job_id, "w1", lease_seconds=60.0,
                           progress={"completed": 3, "total": 16})
    job = queue.get(job_id)
    assert job.progress == {"completed": 3, "total": 16}
    assert job.lease_expires_at > time.time() + 30


def test_heartbeat_fails_for_wrong_worker_or_state(queue):
    job_id = queue.submit("study", {})
    queue.claim("w1")
    assert not queue.heartbeat(job_id, "w2", 30.0)
    queue.cancel(job_id)
    assert not queue.heartbeat(job_id, "w1", 30.0)


def test_complete(queue):
    job_id = queue.submit("study", {})
    queue.claim("w1")
    assert queue.complete(job_id, "w1", result_key="sweep-abc")
    job = queue.get(job_id)
    assert job.state == "done"
    assert job.terminal
    assert job.result_key == "sweep-abc"
    assert job.finished_at is not None


def test_complete_fails_after_ownership_lost(queue):
    job_id = queue.submit("study", {})
    queue.claim("w1")
    queue.cancel(job_id)
    assert not queue.complete(job_id, "w1")
    assert queue.get(job_id).state == "cancelled"


def test_cancel_queued_and_running(queue):
    queued = queue.submit("study", {})
    assert queue.cancel(queued)
    assert queue.get(queued).state == "cancelled"
    running = queue.submit("study", {})
    queue.claim("w1")
    assert queue.cancel(running)
    assert queue.get(running).state == "cancelled"


def test_cancel_terminal_returns_false(queue):
    job_id = queue.submit("study", {})
    queue.claim("w1")
    queue.complete(job_id, "w1")
    assert queue.cancel(job_id) is False


def test_cancel_missing_raises(queue):
    with pytest.raises(JobError):
        queue.cancel("job-nope")


def test_fail_requeues_until_attempts_exhausted(queue):
    job_id = queue.submit("study", {}, max_attempts=2)
    queue.claim("w1")
    assert queue.fail(job_id, "w1", "boom 1") == "queued"
    assert queue.get(job_id).state == "queued"
    queue.claim("w1")
    assert queue.fail(job_id, "w1", "boom 2") == "failed"
    job = queue.get(job_id)
    assert job.state == "failed"
    assert job.terminal
    assert "boom 2" in job.error


def test_fail_by_non_owner_is_ignored(queue):
    job_id = queue.submit("study", {})
    queue.claim("w1")
    assert queue.fail(job_id, "w2", "not mine") is None
    assert queue.get(job_id).state == "running"


def test_expired_lease_is_requeued_on_next_claim(queue):
    """The crash-recovery core: a dead worker's job goes back to the
    queue as soon as any worker claims, no janitor required."""
    job_id = queue.submit("study", {})
    queue.claim("w1", lease_seconds=0.02)
    time.sleep(0.05)
    job = queue.claim("w2", lease_seconds=30.0)
    assert job is not None
    assert job.id == job_id
    assert job.worker == "w2"
    assert job.attempts == 2
    # The dead worker's late heartbeat must bounce.
    assert not queue.heartbeat(job_id, "w1", 30.0)


def test_expired_lease_with_exhausted_attempts_fails(queue):
    job_id = queue.submit("study", {}, max_attempts=1)
    queue.claim("w1", lease_seconds=0.02)
    time.sleep(0.05)
    assert queue.claim("w2") is None
    job = queue.get(job_id)
    assert job.state == "failed"
    assert "lease expired" in job.error


def test_list_jobs_filtering(queue):
    a = queue.submit("study", {})
    queue.submit("study", {})
    queue.claim("w1")
    assert {job.id for job in queue.list_jobs(state="running")} == {a}
    assert len(queue.list_jobs()) == 2
    assert len(queue.list_jobs(limit=1)) == 1
    with pytest.raises(JobError):
        queue.list_jobs(state="bogus")


def test_queue_is_durable_across_instances(tmp_path):
    path = str(tmp_path / "jobs.db")
    job_id = JobQueue(path).submit("study", {"capacities": [128]})
    job = JobQueue(path).get(job_id)
    assert job.state == "queued"
    assert job.spec == {"capacities": [128]}


def test_concurrent_claims_hand_out_each_job_once(queue):
    for _ in range(8):
        queue.submit("study", {})
    claimed = []
    lock = threading.Lock()

    def worker(name):
        while True:
            job = queue.claim(name)
            if job is None:
                return
            with lock:
                claimed.append(job.id)

    threads = [threading.Thread(target=worker, args=("w%d" % i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(claimed) == 8
    assert len(set(claimed)) == 8


def test_job_payload_is_jsonable(queue):
    import json

    job_id = queue.submit("study", {"capacities": [128]})
    payload = queue.get(job_id).to_payload()
    assert json.loads(json.dumps(payload))["id"] == job_id
    assert payload["state"] == "queued"
