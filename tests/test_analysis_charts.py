"""ASCII chart rendering."""

import pytest

from repro.analysis import bar_chart, grouped_bar_chart, sparkline


def test_sparkline_levels():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_constant_and_empty():
    assert sparkline([5, 5, 5]) == "▁▁▁"
    assert sparkline([]) == ""


def test_bar_chart_scaling():
    text = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
    lines = text.splitlines()
    bars = [line.split("|")[1].count("#") for line in lines]
    assert bars[1] == 10
    assert bars[0] == 5


def test_bar_chart_title_and_unit():
    text = bar_chart([("x", 3.0)], title="My Chart", unit=" ns")
    assert text.splitlines()[0] == "My Chart"
    assert "3 ns" in text


def test_bar_chart_log_scale_compresses_range():
    linear = bar_chart([("a", 1.0), ("b", 1000.0)], width=20)
    log = bar_chart([("a", 1.0), ("b", 1000.0)], width=20, log=True)
    bar_of = lambda text, k: text.splitlines()[k].count("#")  # noqa: E731
    assert bar_of(linear, 0) == 0   # 1/1000 rounds to no bar
    assert bar_of(log, 0) >= 1      # log scale keeps it visible


def test_bar_chart_rejects_negative():
    with pytest.raises(ValueError):
        bar_chart([("a", -1.0)])


def test_bar_chart_all_zero():
    text = bar_chart([("a", 0.0), ("b", 0.0)])
    assert "#" not in text


def test_grouped_bar_chart_structure():
    text = grouped_bar_chart(
        ["1KB", "4KB"],
        {"lvt": [1.0, 2.0], "hvt": [0.5, 1.0]},
        title="grouped",
    )
    assert "1KB:" in text and "4KB:" in text
    assert text.splitlines()[0] == "grouped"


def test_grouped_bar_chart_length_mismatch():
    with pytest.raises(ValueError):
        grouped_bar_chart(["a"], {"s": [1.0, 2.0]})
