"""Tests for repro.yields.failure: estimators, composition, budgets."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.yields.ecc import make_code
from repro.cell.importance import MarginSolver, TailEstimate
from repro.yields.failure import (
    MIN_TAIL_EVENTS,
    estimate_p_fail_sampled,
    array_yield,
    coded_p_fail_budget,
    codeword_fail_probability,
    estimate_p_fail,
    margin_relaxation_z,
    p_fail_empirical,
    p_fail_gaussian,
    relaxed_sense_voltage,
    sense_fail_probability,
    uncoded_array_yield,
    uncoded_p_fail_budget,
    word_fail_probability,
    z_score,
)


class TestEstimators:
    def test_empirical_counts_strict_tail(self):
        samples = [0.01, 0.02, -0.01, 0.05]
        assert p_fail_empirical(samples, 0.0) == 0.25
        # The floor itself is not a failure (strict <).
        assert p_fail_empirical([0.0, 1.0], 0.0) == 0.0

    def test_gaussian_matches_closed_form(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(0.1, 0.02, size=4000)
        mu = float(np.mean(samples))
        sigma = float(np.std(samples, ddof=1))
        from statistics import NormalDist

        expected = NormalDist().cdf((0.05 - mu) / sigma)
        assert p_fail_gaussian(samples, 0.05) == pytest.approx(expected)

    def test_estimators_agree_in_observable_regime(self):
        # Where the tail is well-populated, empirical and Gaussian
        # estimates of a genuinely normal sample should agree.
        rng = np.random.default_rng(3)
        samples = rng.normal(0.0, 1.0, size=20000)
        est = estimate_p_fail(samples, -1.0)
        assert est.source == "empirical"
        assert est.empirical == pytest.approx(est.gaussian, rel=0.06)

    def test_gaussian_takes_over_at_zero_observed_failures(self):
        rng = np.random.default_rng(11)
        samples = rng.normal(0.15, 0.02, size=200)
        est = estimate_p_fail(samples, 0.0)   # ~7.5 sigma out
        assert est.tail_count == 0
        assert est.empirical == 0.0
        assert est.source == "gaussian"
        assert 0.0 < est.gaussian < 1e-9
        assert est.p_fail == est.gaussian

    def test_min_tail_threshold_selects_source(self):
        samples = np.concatenate([
            -np.ones(MIN_TAIL_EVENTS - 1), np.ones(200)
        ])
        assert estimate_p_fail(samples, 0.0).source == "gaussian"
        samples = np.concatenate([
            -np.ones(MIN_TAIL_EVENTS), np.ones(200)
        ])
        assert estimate_p_fail(samples, 0.0).source == "empirical"

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            p_fail_empirical([], 0.0)
        with pytest.raises(ValueError):
            p_fail_gaussian([], 0.0)
        with pytest.raises(ValueError):
            estimate_p_fail([], 0.0)

    def test_single_sample_steps_at_mean(self):
        # A single sample has an undefined ddof=1 sigma; the documented
        # degenerate contract is a step at the sample value.
        assert p_fail_gaussian([0.1], 0.0) == 0.0
        assert p_fail_gaussian([0.1], 0.2) == 1.0

    def test_zero_variance_vector_is_finite(self):
        samples = np.full(50, 0.1)
        assert p_fail_gaussian(samples, 0.05) == 0.0
        assert p_fail_gaussian(samples, 0.15) == 1.0
        est = estimate_p_fail(samples, 0.05)
        assert est.tail_count == 0
        assert est.source == "gaussian"
        assert est.p_fail == 0.0
        below = estimate_p_fail(samples, 0.15)
        assert below.p_fail == 1.0
        assert below.source == "empirical"

    def test_zero_tail_count_is_finite(self):
        est = estimate_p_fail(np.linspace(0.1, 0.2, 40), 0.05)
        assert est.tail_count == 0
        assert est.source == "gaussian"
        assert 0.0 <= est.p_fail < 0.01
        assert math.isfinite(est.p_fail)


class TestSampledPath:
    """estimate_p_fail's rare-event branch (TailEstimate with CI)."""

    def _solver(self):
        g = np.array([1.0, 0.3, 0.7, 0.2, 0.5, 0.4])
        return MarginSolver(lambda z: 0.12 - z @ g)

    def test_sampler_without_solver_rejected(self):
        with pytest.raises(ValueError):
            estimate_p_fail(None, 0.0, sampler="shifted")

    def test_sampler_branch_returns_tail_estimate(self):
        est = estimate_p_fail(
            None, 0.0, solver=self._solver(), sampler="shifted",
            ci_target=0.3, max_samples=2048, seed=7,
        )
        assert isinstance(est, TailEstimate)
        assert est.sampler == "shifted"
        assert est.source == "sampled"
        assert 0.0 < est.p_fail < 1.0
        assert est.ci_half > 0.0
        assert est.ci_low <= est.p_fail <= est.ci_high

    def test_front_door_matches_direct(self):
        direct = estimate_p_fail_sampled(
            self._solver(), 0.0, sampler="shifted", ci_target=0.3,
            max_samples=2048, seed=7,
        )
        routed = estimate_p_fail(
            None, 0.0, solver=self._solver(), sampler="shifted",
            ci_target=0.3, max_samples=2048, seed=7,
        )
        assert routed.p_fail == direct.p_fail
        assert routed.ci_half == direct.ci_half
        assert routed.n_samples == direct.n_samples


class TestComposition:
    def test_no_correction_closed_form(self):
        p = 1e-3
        assert codeword_fail_probability(p, 64, 0) == pytest.approx(
            1.0 - (1.0 - p) ** 64)

    def test_single_correction_binomial(self):
        p, n = 1e-3, 72
        direct = sum(
            math.comb(n, i) * p ** i * (1.0 - p) ** (n - i)
            for i in range(2, n + 1)
        )
        assert codeword_fail_probability(p, n, 1) == pytest.approx(
            direct, rel=1e-10)

    def test_deep_tail_no_underflow(self):
        q = codeword_fail_probability(1e-9, 72, 1)
        # ~ C(72,2) p^2: well below double-rounding of the survival sum.
        assert q == pytest.approx(math.comb(72, 2) * 1e-18, rel=1e-3)

    def test_correction_helps_monotonically(self):
        p = 1e-3
        q0 = codeword_fail_probability(p, 72, 0)
        q1 = codeword_fail_probability(p, 72, 1)
        q2 = codeword_fail_probability(p, 72, 2)
        assert q0 > q1 > q2 > 0.0

    def test_edge_probabilities(self):
        assert codeword_fail_probability(0.0, 72, 1) == 0.0
        assert codeword_fail_probability(1.0, 72, 1) == 1.0
        assert codeword_fail_probability(0.5, 4, 4) == 0.0

    def test_word_interleave_composes(self):
        code = make_code("secded-x2", 64)
        p = 1e-3
        q_way = codeword_fail_probability(p, code.codeword_bits, 1)
        expected = 1.0 - (1.0 - q_way) ** 2
        assert word_fail_probability(p, code) == pytest.approx(expected)

    def test_array_yield_vs_uncoded(self):
        code = make_code("secded", 64)
        p = 1e-4
        coded = array_yield(p, code, 1024)
        uncoded = uncoded_array_yield(p, 1024 * 64)
        assert coded > uncoded
        assert 0.0 < uncoded < coded <= 1.0


class TestBudgets:
    def test_uncoded_budget_round_trip(self):
        p = uncoded_p_fail_budget(0.9, 131072)
        assert uncoded_array_yield(p, 131072) == pytest.approx(0.9)

    def test_coded_budget_round_trip(self):
        code = make_code("secded", 64)
        p = coded_p_fail_budget(0.9, code, 2048)
        assert array_yield(p, code, 2048) == pytest.approx(0.9, rel=1e-6)

    def test_coded_budget_exceeds_uncoded(self):
        code = make_code("secded", 64)
        p_c = coded_p_fail_budget(0.9, code, 2048)
        p_u = uncoded_p_fail_budget(0.9, 2048 * 64)
        assert p_c > 100 * p_u

    def test_z_score_inverts_normal_tail(self):
        from statistics import NormalDist

        for p in (1e-2, 1e-4, 1e-7):
            assert NormalDist().cdf(-z_score(p)) == pytest.approx(p)

    def test_relaxation_zero_without_correction(self):
        assert margin_relaxation_z(0.9, make_code("none", 64), 2048) \
            == 0.0

    def test_relaxation_positive_and_grows_with_capacity(self):
        code = make_code("secded", 64)
        small = margin_relaxation_z(0.9, code, 128)
        large = margin_relaxation_z(0.9, code, 2048)
        assert 0.0 < small < large

    def test_budget_fraction_shrinks_relaxation(self):
        code = make_code("secded", 64)
        full = margin_relaxation_z(0.9, code, 2048)
        half = margin_relaxation_z(0.9, code, 2048, budget_fraction=0.5)
        assert 0.0 < half < full

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            uncoded_p_fail_budget(1.0, 64)
        with pytest.raises(ValueError):
            coded_p_fail_budget(0.0, make_code("secded", 64), 64)


class TestSenseMargin:
    def test_sense_fail_probability_is_offset_tail(self):
        from statistics import NormalDist

        p = sense_fail_probability(0.060, 0.015)
        assert p == pytest.approx(NormalDist().cdf(-4.0))

    def test_uncorrecting_code_keeps_nominal(self):
        assert relaxed_sense_voltage(
            0.9, make_code("none", 64), 2048, 0.015, nominal=0.120
        ) == 0.120

    def test_secded_relaxes_below_nominal(self):
        dv = relaxed_sense_voltage(
            0.9, make_code("secded", 64), 2048, 0.015, nominal=0.120
        )
        assert 0.0 < dv < 0.120
        # On the 1 mV grid, and conservatively ceiled.
        assert dv == pytest.approx(round(dv, 3))

    def test_relaxed_window_never_exceeds_budget(self):
        code = make_code("secded", 64)
        dv = relaxed_sense_voltage(0.9, code, 2048, 0.015,
                                   nominal=0.120, budget_fraction=0.5)
        p_sense = sense_fail_probability(dv, 0.015)
        assert p_sense <= 0.5 * coded_p_fail_budget(0.9, code, 2048)
