"""Table-2 component delays/energies."""

import numpy as np
import pytest

from repro.array import ArrayConfig, ArrayOrganization, compute_components
from repro.array.capacitance import RAIL_DRIVER_FINS, WL_DRIVER_FINS
from repro.array.components import COEFF_PRE, COEFF_WL_RD


@pytest.fixture(scope="module")
def config():
    return ArrayConfig()


def components_at(char, config, n_c=64, n_r=64, n_pre=4, n_wr=2,
                  v_ddc=0.55, v_ssc=-0.1, v_wl=0.55):
    org = ArrayOrganization(n_r=n_r, n_c=n_c)
    return compute_components(char, org, config, n_pre, n_wr,
                              v_ddc, v_ssc, v_wl), org


def test_no_assist_rails_cost_nothing(hvt_char, config):
    comp, _org = components_at(hvt_char, config, v_ddc=hvt_char.vdd,
                               v_ssc=0.0)
    assert comp.delay("CVDD") == 0.0
    assert comp.energy("CVDD") == 0.0
    assert comp.delay("CVSS") == 0.0
    assert comp.energy("CVSS") == 0.0


def test_assist_rails_cost_energy(hvt_char, config):
    comp, _org = components_at(hvt_char, config, v_ddc=0.55, v_ssc=-0.2)
    assert comp.delay("CVDD") > 0
    assert comp.energy("CVDD") == pytest.approx(
        comp.capacitances["CVDD"] * hvt_char.vdd * (0.55 - hvt_char.vdd)
    )
    assert comp.energy("CVSS") == pytest.approx(
        comp.capacitances["CVSS"] * hvt_char.vdd * 0.2
    )


def test_wl_read_delay_hand_formula(hvt_char, config):
    comp, _org = components_at(hvt_char, config)
    c_wl = comp.capacitances["WL"]
    i = COEFF_WL_RD * WL_DRIVER_FINS * hvt_char.i_on_pfet
    assert comp.delay("WL_rd") == pytest.approx(c_wl * hvt_char.vdd / i)


def test_col_terms_zero_without_mux(hvt_char, config):
    comp, org = components_at(hvt_char, config, n_c=64)
    assert not org.has_column_mux
    assert comp.delay("COL") == 0.0
    assert comp.energy("COL") == 0.0


def test_col_terms_present_with_mux(hvt_char, config):
    comp, org = components_at(hvt_char, config, n_c=256)
    assert org.has_column_mux
    assert comp.delay("COL") > 0
    assert comp.energy("COL") > 0


def test_bl_read_uses_cell_current(hvt_char, config):
    comp, _org = components_at(hvt_char, config, v_ddc=0.55, v_ssc=-0.2)
    expected = (
        comp.capacitances["BL"] * config.delta_v_sense
        / hvt_char.i_read(0.55, -0.2)
    )
    assert comp.delay("BL_rd") == pytest.approx(expected)
    # Table 2 books read BL energy against the boosted rails.
    assert comp.energy("BL_rd") == pytest.approx(
        comp.capacitances["BL"] * (0.55 + 0.2) * config.delta_v_sense
    )


def test_negative_gnd_cuts_bl_delay(hvt_char, config):
    slow, _ = components_at(hvt_char, config, v_ssc=0.0)
    fast, _ = components_at(hvt_char, config, v_ssc=-0.24)
    assert fast.delay("BL_rd") < 0.5 * slow.delay("BL_rd")


def test_precharge_scales_inversely_with_fins(hvt_char, config):
    few, _ = components_at(hvt_char, config, n_pre=2)
    many, _ = components_at(hvt_char, config, n_pre=20)
    # More fins -> faster precharge, but also more BL cap: the speedup
    # is slightly less than 10x.
    ratio = few.delay("PRE_rd") / many.delay("PRE_rd")
    assert 7.0 < ratio < 10.0


def test_precharge_write_longer_than_read(hvt_char, config):
    comp, _ = components_at(hvt_char, config)
    # Full-swing restore after a write vs a DeltaV_S top-up after a read.
    assert comp.delay("PRE_wr") > comp.delay("PRE_rd")
    assert comp.delay("PRE_wr") / comp.delay("PRE_rd") == pytest.approx(
        hvt_char.vdd / config.delta_v_sense, rel=1e-6
    )


def test_vectorized_fin_broadcast(hvt_char, config):
    n_pre = np.array([1, 2, 4, 8])
    comp, _ = components_at(hvt_char, config, n_pre=n_pre)
    assert comp.delay("PRE_rd").shape == n_pre.shape
    assert np.all(np.diff(comp.delay("PRE_rd")) < 0)


def test_rail_driver_fin_constants():
    assert RAIL_DRIVER_FINS == 20
    assert WL_DRIVER_FINS == 27
    assert COEFF_PRE == 0.50
