"""Persistent characterization cache."""

import json
import os

import pytest

from repro.lut import CharacterizationCache


def test_memory_only_cache():
    cache = CharacterizationCache()
    cache.put("k", [1, 2, 3])
    assert cache.get("k") == [1, 2, 3]
    assert "k" in cache
    assert len(cache) == 1


def test_get_missing_returns_none():
    assert CharacterizationCache().get("nope") is None


def test_persistence_round_trip(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("alpha", {"x": 1.5})
    reloaded = CharacterizationCache(path)
    assert reloaded.get("alpha") == {"x": 1.5}


def test_get_or_compute_runs_once(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("answer", compute) == 42
    assert cache.get_or_compute("answer", compute) == 42
    assert len(calls) == 1


def test_file_is_valid_json(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", "v")
    with open(path) as handle:
        data = json.load(handle)
    assert data == {"k": "v"}


def test_no_leftover_tmp_files(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    for k in range(5):
        cache.put("k%d" % k, k)
    leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert leftovers == []


def test_clear(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", 1)
    cache.clear()
    assert len(cache) == 0
    assert CharacterizationCache(path).get("k") is None


def test_creates_parent_directory(tmp_path):
    path = str(tmp_path / "sub" / "dir" / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", 1)
    assert os.path.exists(path)


def _mtime(path):
    return os.stat(path).st_mtime_ns


def test_deferred_batches_writes(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    with cache.deferred():
        for k in range(10):
            cache.put("k%d" % k, k)
        # Nothing hits the disk while the batch is open.
        assert not os.path.exists(path)
    assert len(CharacterizationCache(path)) == 10


def test_context_manager_is_deferred(tmp_path):
    path = str(tmp_path / "cache.json")
    with CharacterizationCache(path) as cache:
        cache.put("a", 1)
        assert not os.path.exists(path)
    assert CharacterizationCache(path).get("a") == 1


def test_deferred_nesting_flushes_once_at_outermost(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    with cache.deferred():
        with cache.deferred():
            cache.put("inner", 1)
        # Inner exit must not flush while the outer batch is open.
        assert not os.path.exists(path)
        cache.put("outer", 2)
    assert len(CharacterizationCache(path)) == 2


def test_deferred_crash_persists_prior_work(tmp_path):
    """A compute crash mid-batch still lands everything computed before
    the failure (get_or_compute stays crash-safe under deferral)."""
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)

    def boom():
        raise RuntimeError("characterization failed")

    with pytest.raises(RuntimeError):
        with cache.deferred():
            cache.get_or_compute("good", lambda: 41)
            cache.get_or_compute("bad", boom)
    reloaded = CharacterizationCache(path)
    assert reloaded.get("good") == 41
    assert "bad" not in reloaded


def test_flush_is_noop_when_clean(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", 1)
    first = _mtime(path)
    cache.flush()  # clean -> no rewrite
    assert _mtime(path) == first


def test_undeferred_put_still_writes_immediately(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", "v")
    assert CharacterizationCache(path).get("k") == "v"


def test_get_or_compute_thread_hammer(tmp_path):
    """Many threads racing get_or_compute on one key must compute it
    exactly once (the service's thread pool shares one session cache)."""
    import threading
    from concurrent.futures import ThreadPoolExecutor

    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    calls = []
    gate = threading.Barrier(8)

    def compute():
        calls.append(threading.get_ident())
        return 42

    def worker(_):
        gate.wait()  # maximize contention: all threads enter together
        return cache.get_or_compute("answer", compute)

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(worker, range(8)))
    assert results == [42] * 8
    assert len(calls) == 1
    assert CharacterizationCache(path).get("answer") == 42


def test_concurrent_distinct_keys_all_land(tmp_path):
    from concurrent.futures import ThreadPoolExecutor

    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)

    def worker(k):
        return cache.get_or_compute("k%d" % k, lambda: k * 10)

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(worker, range(32)))
    assert results == [k * 10 for k in range(32)]
    reloaded = CharacterizationCache(path)
    assert len(reloaded) == 32
    assert all(reloaded.get("k%d" % k) == k * 10 for k in range(32))


def test_atexit_flushes_abandoned_deferred_block(tmp_path):
    """A process that exits inside a deferred() block (sys.exit from a
    worker's main, say) still persists its dirty entries: the atexit
    hook flushes every live file-backed cache."""
    import subprocess
    import sys

    path = str(tmp_path / "cache.json")
    script = (
        "import sys\n"
        "from repro.lut import CharacterizationCache\n"
        "cache = CharacterizationCache(%r)\n"
        "cache.__enter__()          # open a deferred batch...\n"
        "cache.put('computed', 123)\n"
        "sys.exit(0)                # ...and never close it\n" % path
    )
    subprocess.run([sys.executable, "-c", script], check=True,
                   timeout=120)
    assert CharacterizationCache(path).get("computed") == 123


def test_atexit_keeps_weak_references_only(tmp_path):
    """Registration must not leak caches: a dropped cache disappears
    from the exit-flush set."""
    import gc

    from repro.lut.cache import _LIVE_CACHES

    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    assert cache in _LIVE_CACHES
    del cache
    gc.collect()
    assert all(c.path != path for c in _LIVE_CACHES)


def test_memory_only_cache_is_not_registered_for_exit_flush():
    from repro.lut.cache import _LIVE_CACHES

    cache = CharacterizationCache()
    assert cache not in _LIVE_CACHES


def test_deferred_hammer_flushes_once_consistent(tmp_path):
    """Threaded puts inside one deferred batch stay consistent and land
    on the single outer flush."""
    from concurrent.futures import ThreadPoolExecutor

    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    with cache.deferred():
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda k: cache.put("k%d" % k, k), range(64)))
        assert not os.path.exists(path)
    assert len(CharacterizationCache(path)) == 64
