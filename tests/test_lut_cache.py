"""Persistent characterization cache."""

import json
import os

import pytest

from repro.lut import CharacterizationCache


def test_memory_only_cache():
    cache = CharacterizationCache()
    cache.put("k", [1, 2, 3])
    assert cache.get("k") == [1, 2, 3]
    assert "k" in cache
    assert len(cache) == 1


def test_get_missing_returns_none():
    assert CharacterizationCache().get("nope") is None


def test_persistence_round_trip(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("alpha", {"x": 1.5})
    reloaded = CharacterizationCache(path)
    assert reloaded.get("alpha") == {"x": 1.5}


def test_get_or_compute_runs_once(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("answer", compute) == 42
    assert cache.get_or_compute("answer", compute) == 42
    assert len(calls) == 1


def test_file_is_valid_json(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", "v")
    with open(path) as handle:
        data = json.load(handle)
    assert data == {"k": "v"}


def test_no_leftover_tmp_files(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    for k in range(5):
        cache.put("k%d" % k, k)
    leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert leftovers == []


def test_clear(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", 1)
    cache.clear()
    assert len(cache) == 0
    assert CharacterizationCache(path).get("k") is None


def test_creates_parent_directory(tmp_path):
    path = str(tmp_path / "sub" / "dir" / "cache.json")
    cache = CharacterizationCache(path)
    cache.put("k", 1)
    assert os.path.exists(path)
