"""The full array model: Table-3 paths, Eqs. (2)-(5), vectorization."""

import numpy as np
import pytest

from repro.array import ArrayConfig, DesignPoint, SRAMArrayModel
from repro.array.energy import total_energy


@pytest.fixture(scope="module")
def model(hvt_char):
    return SRAMArrayModel(hvt_char, ArrayConfig())


def design(n_r=128, n_c=64, n_pre=8, n_wr=2, v_ddc=0.55, v_ssc=-0.2,
           v_wl=0.55):
    return DesignPoint(n_r=n_r, n_c=n_c, n_pre=n_pre, n_wr=n_wr,
                       v_ddc=v_ddc, v_ssc=v_ssc, v_wl=v_wl)


def test_metrics_fields_positive(model):
    m = model.evaluate(8192, design())
    for value in (m.d_rd, m.d_wr, m.d_array, m.e_sw_rd, m.e_sw_wr,
                  m.e_sw, m.e_leak, m.e_total, m.edp):
        assert value > 0


def test_array_delay_is_max_of_paths(model):
    m = model.evaluate(8192, design())
    assert m.d_array == pytest.approx(max(m.d_rd, m.d_wr))


def test_edp_identity(model):
    m = model.evaluate(8192, design())
    assert m.edp == pytest.approx(m.e_total * m.d_array)


def test_energy_blend_equations():
    config = ArrayConfig(beta=0.7, alpha=0.4)
    e_sw, e_leak, e_total = total_energy(
        config, e_sw_rd=10.0, e_sw_wr=20.0, capacity_bits=100,
        p_leak_sram=0.5, d_array=2.0,
    )
    assert e_sw == pytest.approx(0.7 * 10 + 0.3 * 20)
    assert e_leak == pytest.approx(100 * 0.5 * 2.0)
    assert e_total == pytest.approx(0.4 * e_sw + e_leak)


def test_capacity_mismatch_rejected(model):
    with pytest.raises(ValueError):
        model.evaluate(4096, design(n_r=128, n_c=64))


def test_leakage_grows_with_capacity(model):
    small = model.evaluate(8192, design(n_r=128, n_c=64))
    large = model.evaluate(131072, design(n_r=512, n_c=256))
    assert large.e_leak > 10 * small.e_leak


def test_bl_share_reported(model):
    m = model.evaluate(8192, design())
    assert 0 < m.bl_read_delay < m.d_rd
    assert 0 < m.leakage_fraction < 1


def test_vectorized_matches_scalar(model):
    """The optimizer's broadcast evaluation must agree with per-point
    scalar evaluation everywhere."""
    n_pre = np.array([[1, 10], [25, 50]])
    n_wr = np.array([[1, 2], [5, 20]])
    grid = model.evaluate(
        8192, design(n_pre=n_pre, n_wr=n_wr)
    )
    for i in range(2):
        for j in range(2):
            scalar = model.evaluate(
                8192,
                design(n_pre=int(n_pre[i, j]), n_wr=int(n_wr[i, j])),
            )
            assert grid.edp[i, j] == pytest.approx(scalar.edp)
            assert grid.d_array[i, j] == pytest.approx(scalar.d_array)
            assert grid.e_total[i, j] == pytest.approx(scalar.e_total)


def test_negative_gnd_lowers_read_delay(model):
    base = model.evaluate(8192, design(v_ssc=0.0))
    assisted = model.evaluate(8192, design(v_ssc=-0.24))
    assert assisted.d_rd < base.d_rd


def test_wl_overdrive_affects_write_path(model):
    mild = model.evaluate(8192, design(v_wl=0.50))
    strong = model.evaluate(8192, design(v_wl=0.65))
    # Higher V_WL: faster cell flip but more WL swing; and write energy up.
    assert strong.e_sw_wr > mild.e_sw_wr


def test_dcdc_inefficiency_raises_assist_energy(hvt_char):
    ideal = SRAMArrayModel(hvt_char, ArrayConfig(dcdc_efficiency=1.0))
    lossy = SRAMArrayModel(hvt_char, ArrayConfig(dcdc_efficiency=0.8))
    d = design(v_ssc=-0.2)
    assert lossy.evaluate(8192, d).e_sw_rd > ideal.evaluate(8192, d).e_sw_rd


def test_count_all_columns_extension(hvt_char):
    paper = SRAMArrayModel(hvt_char, ArrayConfig())
    full = SRAMArrayModel(hvt_char, ArrayConfig(count_all_columns=True))
    d = design(n_r=128, n_c=64)
    assert full.evaluate(8192, d).e_total > paper.evaluate(8192, d).e_total
    # Delay accounting is unchanged by the energy extension.
    assert full.evaluate(8192, d).d_array == pytest.approx(
        paper.evaluate(8192, d).d_array
    )


def test_design_point_describe():
    text = design().describe()
    assert "128x64" in text
    assert "V_SSC=-200mV" in text


def test_rail_arrival_requirement(model):
    """Section 4: the 20-fin rail drivers keep CVDD/CVSS settled before
    the WL reaches 50% of Vdd, sized for the worst case n_c = 1024."""
    worst = model.evaluate(
        64 * 1024,
        design(n_r=64, n_c=1024, n_pre=25, n_wr=3,
               v_ddc=0.55, v_ssc=-0.24),
    )
    assert worst.rails_timely
    assert worst.rail_arrival_slack > 0
    typical = model.evaluate(8192, design())
    assert typical.rail_arrival_slack > worst.rail_arrival_slack
