"""FinFETParams validation and derived quantities."""

import math

import numpy as np
import pytest

from repro.devices import FinFETParams


def make_params(**overrides):
    base = dict(polarity="n", vt=0.335, b=1.89e-4)
    base.update(overrides)
    return FinFETParams(**base)


def test_valid_construction():
    params = make_params()
    assert params.polarity == "n"
    assert params.vt == pytest.approx(0.335)


def test_rejects_bad_polarity():
    with pytest.raises(ValueError):
        make_params(polarity="x")


def test_rejects_nonpositive_vt():
    with pytest.raises(ValueError):
        make_params(vt=0.0)
    with pytest.raises(ValueError):
        make_params(vt=-0.1)


def test_rejects_nonpositive_b():
    with pytest.raises(ValueError):
        make_params(b=0.0)


def test_rejects_negative_floor():
    with pytest.raises(ValueError):
        make_params(i_floor=-1e-12)


def test_rejects_nonpositive_alpha_or_gamma():
    with pytest.raises(ValueError):
        make_params(alpha=0.0)
    with pytest.raises(ValueError):
        make_params(gamma_s=0.0)


def test_subthreshold_swing_formula():
    params = make_params(gamma_s=0.03515, alpha=1.3)
    expected = 0.03515 * math.log(10.0) / 1.3
    assert params.subthreshold_swing == pytest.approx(expected)


def test_with_vt_shift():
    params = make_params()
    shifted = params.with_vt_shift(0.020)
    assert shifted.vt == pytest.approx(0.355)
    # The original is unchanged (frozen dataclass semantics).
    assert params.vt == pytest.approx(0.335)


def test_with_vt_shift_floors_at_1mv():
    params = make_params()
    shifted = params.with_vt_shift(-1.0)
    assert shifted.vt == pytest.approx(0.001)


def test_scaled_drive():
    params = make_params()
    scaled = params.scaled_drive(2.0)
    assert scaled.b == pytest.approx(2.0 * params.b)
    assert scaled.vt == params.vt


def test_scaled_drive_rejects_nonpositive():
    with pytest.raises(ValueError):
        make_params().scaled_drive(0.0)


def test_params_are_hashable_and_comparable():
    a = make_params()
    b = make_params()
    assert a == b
    assert hash(a) == hash(b)
    assert a != make_params(vt=0.3)


def test_with_vt_shifts_builds_batched_column():
    params = make_params()
    shifts = np.asarray([0.02, -0.01, 0.0])
    batched = params.with_vt_shifts(shifts)
    assert batched.is_batched
    assert batched.batch_size == 3
    assert batched.vt.shape == (3, 1)
    assert np.array_equal(batched.vt[:, 0], params.vt + shifts)
    # Scalar params are untouched and report no batch.
    assert not params.is_batched
    assert params.batch_size is None


def test_with_vt_shifts_applies_scalar_floor_per_sample():
    batched = make_params().with_vt_shifts(np.asarray([-1.0, 0.0]))
    assert batched.vt[0, 0] == pytest.approx(0.001)
    # Matches the scalar shim on every row.
    assert batched.vt[0, 0] == make_params().with_vt_shift(-1.0).vt


def test_with_vt_shifts_validation():
    params = make_params()
    with pytest.raises(ValueError):
        params.with_vt_shifts(np.zeros((2, 2)))
    batched = params.with_vt_shifts(np.asarray([0.0, 0.01]))
    with pytest.raises(ValueError):
        batched.with_vt_shifts(np.asarray([0.0]))


def test_batched_vt_must_be_column():
    with pytest.raises(ValueError):
        make_params(vt=np.asarray([0.3, 0.4]))
    with pytest.raises(ValueError):
        make_params(vt=np.asarray([[0.3, 0.4]]))
    column = make_params(vt=np.asarray([[0.3], [0.4]]))
    assert column.batch_size == 2


def test_batched_params_eq_and_hash():
    shifts = np.asarray([0.0, 0.02])
    a = make_params().with_vt_shifts(shifts)
    b = make_params().with_vt_shifts(shifts)
    assert a == b
    assert hash(a) == hash(b)
    assert a != make_params()
    assert a != make_params().with_vt_shifts(np.asarray([0.0, 0.03]))
