"""FinFETParams validation and derived quantities."""

import math

import pytest

from repro.devices import FinFETParams


def make_params(**overrides):
    base = dict(polarity="n", vt=0.335, b=1.89e-4)
    base.update(overrides)
    return FinFETParams(**base)


def test_valid_construction():
    params = make_params()
    assert params.polarity == "n"
    assert params.vt == pytest.approx(0.335)


def test_rejects_bad_polarity():
    with pytest.raises(ValueError):
        make_params(polarity="x")


def test_rejects_nonpositive_vt():
    with pytest.raises(ValueError):
        make_params(vt=0.0)
    with pytest.raises(ValueError):
        make_params(vt=-0.1)


def test_rejects_nonpositive_b():
    with pytest.raises(ValueError):
        make_params(b=0.0)


def test_rejects_negative_floor():
    with pytest.raises(ValueError):
        make_params(i_floor=-1e-12)


def test_rejects_nonpositive_alpha_or_gamma():
    with pytest.raises(ValueError):
        make_params(alpha=0.0)
    with pytest.raises(ValueError):
        make_params(gamma_s=0.0)


def test_subthreshold_swing_formula():
    params = make_params(gamma_s=0.03515, alpha=1.3)
    expected = 0.03515 * math.log(10.0) / 1.3
    assert params.subthreshold_swing == pytest.approx(expected)


def test_with_vt_shift():
    params = make_params()
    shifted = params.with_vt_shift(0.020)
    assert shifted.vt == pytest.approx(0.355)
    # The original is unchanged (frozen dataclass semantics).
    assert params.vt == pytest.approx(0.335)


def test_with_vt_shift_floors_at_1mv():
    params = make_params()
    shifted = params.with_vt_shift(-1.0)
    assert shifted.vt == pytest.approx(0.001)


def test_scaled_drive():
    params = make_params()
    scaled = params.scaled_drive(2.0)
    assert scaled.b == pytest.approx(2.0 * params.b)
    assert scaled.vt == params.vt


def test_scaled_drive_rejects_nonpositive():
    with pytest.raises(ValueError):
        make_params().scaled_drive(0.0)


def test_params_are_hashable_and_comparable():
    a = make_params()
    b = make_params()
    assert a == b
    assert hash(a) == hash(b)
    assert a != make_params(vt=0.3)
