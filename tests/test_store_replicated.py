"""Store replication over HTTP: read-through, write-back, backlog,
read repair, and exact float preservation across the wire."""

from __future__ import annotations

import socket

import pytest

from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.store import ExperimentStore, ReplicatedStore

from .conftest import CACHE_PATH

#: Awkward floats: shortest-repr round-tripping must preserve each one
#: bit-exactly through JSON -> HTTP -> JSON -> SQLite.
PAYLOAD = {"edp": 1.0000000000000002e-21, "third": 1.0 / 3.0,
           "tiny": 5e-324, "avogadro": 6.02214076e23,
           "point_one": 0.1, "nested": {"values": [0.2, 0.30000000000004]}}


def store_config(tmp_path, name, port=0):
    return ServiceConfig(port=port, executor="thread", workers=2,
                         cache_path=CACHE_PATH,
                         store_path=str(tmp_path / ("%s.db" % name)))


@pytest.fixture()
def replica(paper_session, tmp_path):
    with ServerThread(store_config(tmp_path, "replica"),
                      session=paper_session) as running:
        yield running


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def url_of(server):
    return "http://127.0.0.1:%d" % server.port


# ---------------------------------------------------------------------------
# The /v1/store wire surface
# ---------------------------------------------------------------------------

def test_store_put_get_round_trip_is_bit_exact(replica):
    with ServiceClient(port=replica.port) as client:
        client.store_put("cell-feedc0de01", PAYLOAD,
                         provenance={"worker": "wire-test"})
        blob = client.store_get("cell-feedc0de01")
    assert blob["payload"] == PAYLOAD
    # Bitwise, not merely approximately: the resume contract.
    assert repr(blob["payload"]["edp"]) == repr(PAYLOAD["edp"])
    assert repr(blob["payload"]["tiny"]) == repr(PAYLOAD["tiny"])
    assert blob["provenance"]["worker"] == "wire-test"


def test_store_get_missing_key_is_none(replica):
    with ServiceClient(port=replica.port) as client:
        assert client.store_get("cell-00000000ff") is None


def test_store_rejects_malformed_keys_and_bodies(replica):
    with ServiceClient(port=replica.port) as client:
        for bad in ("../etc/passwd", "no_digest", "cell-XYZ",
                    "-abcdef", "cell-abc"):
            status, payload, _ = client.request(
                "GET", "/v1/store/%s" % bad, check=False)
            assert status == 400, bad
        status, payload, _ = client.request(
            "PUT", "/v1/store/cell-abcdef012345", {"nope": 1},
            check=False)
        assert status == 400
        status, _, _ = client.request(
            "DELETE", "/v1/store/cell-abcdef012345", check=False)
        assert status == 405


def test_store_sync_echoes_request_id(replica):
    with ServiceClient(port=replica.port) as client:
        _, _, headers = client.request(
            "PUT", "/v1/store/cell-a1dc0de401",
            {"payload": {"x": 1.5}}, request_id="sync-rid-42")
        assert headers["x-request-id"] == "sync-rid-42"
        _, _, headers = client.request(
            "GET", "/v1/store/cell-a1dc0de401",
            request_id="sync-rid-43")
        assert headers["x-request-id"] == "sync-rid-43"


# ---------------------------------------------------------------------------
# ReplicatedStore: write-back
# ---------------------------------------------------------------------------

def test_put_writes_locally_then_pushes_to_replica(replica, tmp_path):
    store = ReplicatedStore(str(tmp_path / "local.db"),
                            replicas=[url_of(replica)])
    store.put("cell-abc123def456", PAYLOAD, {"worker": "pusher"})
    assert store.local.has("cell-abc123def456")
    assert store.pending() == {url_of(replica): 0}
    with ServiceClient(port=replica.port) as client:
        blob = client.store_get("cell-abc123def456")
    assert blob["payload"] == PAYLOAD
    assert blob["provenance"]["worker"] == "pusher"
    store.close()


def test_down_replica_defers_to_backlog_then_flushes(paper_session,
                                                     tmp_path):
    port = free_port()
    url = "http://127.0.0.1:%d" % port
    store = ReplicatedStore(str(tmp_path / "local.db"), replicas=[url],
                            retry_seconds=0.01, connect_timeout=0.5)
    store.put("cell-0011aabbcc", PAYLOAD)
    assert store.pending() == {url: 1}
    assert store.local.has("cell-0011aabbcc")    # local durability first

    # The replica comes back (same port); flush converges it.
    with ServerThread(store_config(tmp_path, "revived", port=port),
                      session=paper_session) as revived:
        assert store.flush() == 0
        assert store.pending() == {url: 0}
        with ServiceClient(port=revived.port) as client:
            assert client.store_get("cell-0011aabbcc")["payload"] \
                == PAYLOAD
    store.close()


# ---------------------------------------------------------------------------
# ReplicatedStore: read-through and read repair
# ---------------------------------------------------------------------------

def test_local_miss_reads_through_and_caches_locally(replica,
                                                     tmp_path):
    with ServiceClient(port=replica.port) as client:
        client.store_put("cell-4ead7a4a0001", PAYLOAD,
                         provenance={"worker": "origin"})
    store = ReplicatedStore(str(tmp_path / "local.db"),
                            replicas=[url_of(replica)])
    assert not store.local.has("cell-4ead7a4a0001")
    assert store.get("cell-4ead7a4a0001") == PAYLOAD
    # Write-through: the next read (and has()) is a local hit, with
    # the origin's provenance preserved.
    assert store.local.has("cell-4ead7a4a0001")
    assert store.provenance("cell-4ead7a4a0001")["worker"] == "origin"
    store.close()


def test_has_pulls_in_cells_another_host_computed(replica, tmp_path):
    """``has`` is the resumed sweep's skip check — a replica hit must
    both answer True and materialize the cell locally."""
    with ServiceClient(port=replica.port) as client:
        client.store_put("cell-aa55b0110001", PAYLOAD)
    store = ReplicatedStore(str(tmp_path / "local.db"),
                            replicas=[url_of(replica)])
    assert store.has("cell-aa55b0110001")
    assert store.local.get("cell-aa55b0110001", touch=False) == PAYLOAD
    assert not store.has("cell-ab5e90000001")
    store.close()


def test_read_repair_owes_pulled_blobs_to_other_replicas(
        paper_session, replica, tmp_path):
    """A blob pulled from one replica must flow to replicas that
    missed it (they were down when it was written)."""
    with ServerThread(store_config(tmp_path, "second"),
                      session=paper_session) as second:
        with ServiceClient(port=second.port) as client:
            client.store_put("cell-4e9a14000001", PAYLOAD)
        # Preference order [replica, second]: the pull misses the
        # first replica, hits the second, and owes the first.
        store = ReplicatedStore(
            str(tmp_path / "local.db"),
            replicas=[url_of(replica), url_of(second)])
        assert store.get("cell-4e9a14000001") == PAYLOAD
        assert store.pending()[url_of(replica)] == 1
        assert store.flush() == 0
        with ServiceClient(port=replica.port) as client:
            assert client.store_get("cell-4e9a14000001")["payload"] \
                == PAYLOAD
        store.close()


def test_stats_reports_replication_state(replica, tmp_path):
    store = ReplicatedStore(str(tmp_path / "local.db"),
                            replicas=[url_of(replica)])
    store.put("cell-57a750000001", {"x": 1.0})
    stats = store.stats()
    assert stats["replication"]["pending"] == {url_of(replica): 0}
    replicas = stats["replication"]["replicas"]
    assert replicas[0]["url"] == url_of(replica)
    assert replicas[0]["healthy"] is True
    store.close()


def test_unreachable_replica_never_blocks_local_work(tmp_path):
    url = "http://127.0.0.1:%d" % free_port()
    store = ReplicatedStore(str(tmp_path / "local.db"), replicas=[url],
                            retry_seconds=60.0, connect_timeout=0.5)
    store.put("cell-5010000001", PAYLOAD)
    assert store.get("cell-5010000001") == PAYLOAD
    assert store.has("cell-5010000001")
    assert store.get("cell-ab5e90000002") is None
    assert store.pending() == {url: 1}
    # Within the retry window the dead replica is not even retried.
    store.put("cell-5010000002", PAYLOAD)
    assert store.pending() == {url: 2}
    store.close()
