"""Dynamic batcher behavior (repro.service.batching)."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.batching import BatchQueue, QueueFull


class Recorder:
    """A dispatch stub that records every batch it executes."""

    def __init__(self, delay=0.0, fail_on=None):
        self.batches = []
        self.delay = delay
        self.fail_on = fail_on      # group_key that should raise

    async def __call__(self, group_key, items):
        self.batches.append((group_key, list(items)))
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail_on is not None and group_key == self.fail_on:
            raise RuntimeError("engine exploded")
        return ["r:%s" % item for item in items]


def run(coro):
    return asyncio.run(coro)


def test_max_batch_triggers_immediate_flush():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=3, max_wait=60.0)
        futures = [queue.enqueue(("g",), i) for i in range(3)]
        results = await asyncio.gather(*futures)
        return dispatch.batches, results

    batches, results = run(scenario())
    # One batch of three, flushed by size, long before the 60 s timer.
    assert batches == [(("g",), [0, 1, 2])]
    assert results == ["r:0", "r:1", "r:2"]


def test_max_wait_flushes_partial_batch():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=100, max_wait=0.01)
        futures = [queue.enqueue(("g",), i) for i in range(2)]
        results = await asyncio.gather(*futures)
        return dispatch.batches, results, queue.pending

    batches, results, pending = run(scenario())
    assert batches == [(("g",), [0, 1])]
    assert results == ["r:0", "r:1"]
    assert pending == 0


def test_groups_never_mix():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=10, max_wait=0.01)
        fa = [queue.enqueue(("a",), i) for i in range(2)]
        fb = [queue.enqueue(("b",), i) for i in range(2)]
        await asyncio.gather(*fa, *fb)
        return sorted(dispatch.batches)

    batches = run(scenario())
    assert batches == [(("a",), [0, 1]), (("b",), [0, 1])]


def test_zero_wait_disables_batching():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=100, max_wait=0.0)
        first = queue.enqueue(("g",), 0)
        await first
        second = queue.enqueue(("g",), 1)
        await second
        return dispatch.batches

    # Each request flushes on its own soon-call: two single-item batches.
    assert run(scenario()) == [(("g",), [0]), (("g",), [1])]


def test_backpressure_raises_queue_full():
    async def scenario():
        dispatch = Recorder(delay=0.05)
        queue = BatchQueue(dispatch, max_batch=1, max_wait=0.0,
                           max_pending=2)
        first = queue.enqueue(("g",), 0)
        second = queue.enqueue(("g",), 1)
        with pytest.raises(QueueFull) as excinfo:
            queue.enqueue(("g",), 2)
        assert excinfo.value.retry_after >= 0
        results = await asyncio.gather(first, second)
        # Capacity freed: accepted again.
        third = await queue.enqueue(("g",), 3)
        return results, third

    results, third = run(scenario())
    assert results == ["r:0", "r:1"]
    assert third == "r:3"


def test_dispatch_failure_rejects_only_its_batch():
    async def scenario():
        dispatch = Recorder(fail_on=("bad",))
        queue = BatchQueue(dispatch, max_batch=2, max_wait=0.01)
        good = [queue.enqueue(("good",), i) for i in range(2)]
        bad = [queue.enqueue(("bad",), i) for i in range(2)]
        good_results = await asyncio.gather(*good)
        bad_results = await asyncio.gather(*bad, return_exceptions=True)
        return good_results, bad_results, queue.pending

    good_results, bad_results, pending = run(scenario())
    assert good_results == ["r:0", "r:1"]
    assert all(isinstance(r, RuntimeError) for r in bad_results)
    assert pending == 0


def test_result_count_mismatch_rejects_batch():
    async def bad_dispatch(group_key, items):
        return ["only-one"]

    async def scenario():
        queue = BatchQueue(bad_dispatch, max_batch=2, max_wait=0.01)
        futures = [queue.enqueue(("g",), i) for i in range(2)]
        return await asyncio.gather(*futures, return_exceptions=True)

    results = run(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_drain_flushes_queued_items_and_closes():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=100, max_wait=60.0)
        futures = [queue.enqueue(("g",), i) for i in range(3)]
        await queue.drain()
        results = await asyncio.gather(*futures)
        with pytest.raises(RuntimeError, match="draining"):
            queue.enqueue(("g",), 99)
        return dispatch.batches, results

    batches, results = run(scenario())
    # Drain flushed the partial batch without waiting out the timer.
    assert batches == [(("g",), [0, 1, 2])]
    assert results == ["r:0", "r:1", "r:2"]


def test_on_batch_callback_sees_kind_and_size():
    seen = []

    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=2, max_wait=0.01,
                           on_batch=lambda kind, size:
                           seen.append((kind, size)))
        await asyncio.gather(*[
            queue.enqueue(("montecarlo", "hvt"), i) for i in range(2)
        ])
        return seen

    assert run(scenario()) == [("montecarlo", 2)]


def test_constructor_validation():
    async def noop(group_key, items):
        return items

    with pytest.raises(ValueError):
        BatchQueue(noop, max_batch=0)
    with pytest.raises(ValueError):
        BatchQueue(noop, max_wait=-1.0)
    with pytest.raises(ValueError):
        BatchQueue(noop, overrides={"optimize": {"max_batch": 0}})
    with pytest.raises(ValueError):
        BatchQueue(noop, overrides={"optimize": {"max_wait": -1.0}})
    with pytest.raises(ValueError):
        BatchQueue(noop, overrides={"optimize": {"bogus": 1}})


def test_incompatible_optimize_requests_never_share_a_group():
    """Requests that differ in any group_key dimension — flavor,
    engine, or endpoint kind — dispatch separately; only same-group
    requests may fuse.  The method deliberately does NOT split groups:
    it rides per-item so a cell's policies can policy-batch."""
    from repro.service.api import parse_request

    bodies = [
        {"capacity_bytes": 1024, "flavor": "hvt", "method": "M1",
         "engine": "fused"},
        {"capacity_bytes": 1024, "flavor": "hvt", "method": "M2",
         "engine": "fused"},                       # same group as above
        {"capacity_bytes": 1024, "flavor": "lvt", "method": "M1",
         "engine": "fused"},                       # different flavor
        {"capacity_bytes": 1024, "flavor": "hvt", "method": "M1",
         "engine": "vectorized"},                  # different engine
    ]
    requests = [parse_request("/v1/optimize", body) for body in bodies]
    evaluate = parse_request("/v1/evaluate", {
        "flavor": "hvt",
        "design": {"n_r": 128, "n_c": 64, "n_pre": 4, "n_wr": 4,
                   "v_ddc": 0.9, "v_wl": 0.9},
    })

    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=10, max_wait=0.01)
        futures = [queue.enqueue(req.group_key(), req.item())
                   for req in requests]
        futures.append(queue.enqueue(evaluate.group_key(),
                                     evaluate.item()))
        await asyncio.gather(*futures)
        return dispatch.batches

    batches = run(scenario())
    groups = sorted(key for key, _ in batches)
    assert groups == [
        ("evaluate", "hvt"),
        ("optimize", "hvt", "fused"),
        ("optimize", "hvt", "vectorized"),
        ("optimize", "lvt", "fused"),
    ]
    # The two compatible policies fused into the one hvt/fused batch.
    fused_items = dict(batches)[("optimize", "hvt", "fused")]
    assert [item["method"] for item in fused_items] == ["M1", "M2"]


def test_per_endpoint_overrides_apply_per_kind():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(
            dispatch, max_batch=10, max_wait=60.0,
            overrides={"optimize": {"max_batch": 2},
                       "evaluate": {"max_wait": 0.01}},
        )
        assert queue.max_batch_for("optimize") == 2
        assert queue.max_wait_for("optimize") == 60.0
        assert queue.max_batch_for("evaluate") == 10
        assert queue.max_wait_for("montecarlo") == 60.0
        # optimize flushes at its overridden size bound of 2...
        opt = [queue.enqueue(("optimize", "hvt", "fused"), i)
               for i in range(2)]
        # ...while evaluate flushes on its overridden (short) timer
        # instead of the queue-wide 60 s one.
        ev = [queue.enqueue(("evaluate", "hvt"), i) for i in range(1)]
        await asyncio.gather(*opt, *ev)
        return sorted(dispatch.batches)

    batches = run(scenario())
    assert batches == [
        (("evaluate", "hvt"), [0]),
        (("optimize", "hvt", "fused"), [0, 1]),
    ]
