"""Dynamic batcher behavior (repro.service.batching)."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.batching import BatchQueue, QueueFull


class Recorder:
    """A dispatch stub that records every batch it executes."""

    def __init__(self, delay=0.0, fail_on=None):
        self.batches = []
        self.delay = delay
        self.fail_on = fail_on      # group_key that should raise

    async def __call__(self, group_key, items):
        self.batches.append((group_key, list(items)))
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail_on is not None and group_key == self.fail_on:
            raise RuntimeError("engine exploded")
        return ["r:%s" % item for item in items]


def run(coro):
    return asyncio.run(coro)


def test_max_batch_triggers_immediate_flush():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=3, max_wait=60.0)
        futures = [queue.enqueue(("g",), i) for i in range(3)]
        results = await asyncio.gather(*futures)
        return dispatch.batches, results

    batches, results = run(scenario())
    # One batch of three, flushed by size, long before the 60 s timer.
    assert batches == [(("g",), [0, 1, 2])]
    assert results == ["r:0", "r:1", "r:2"]


def test_max_wait_flushes_partial_batch():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=100, max_wait=0.01)
        futures = [queue.enqueue(("g",), i) for i in range(2)]
        results = await asyncio.gather(*futures)
        return dispatch.batches, results, queue.pending

    batches, results, pending = run(scenario())
    assert batches == [(("g",), [0, 1])]
    assert results == ["r:0", "r:1"]
    assert pending == 0


def test_groups_never_mix():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=10, max_wait=0.01)
        fa = [queue.enqueue(("a",), i) for i in range(2)]
        fb = [queue.enqueue(("b",), i) for i in range(2)]
        await asyncio.gather(*fa, *fb)
        return sorted(dispatch.batches)

    batches = run(scenario())
    assert batches == [(("a",), [0, 1]), (("b",), [0, 1])]


def test_zero_wait_disables_batching():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=100, max_wait=0.0)
        first = queue.enqueue(("g",), 0)
        await first
        second = queue.enqueue(("g",), 1)
        await second
        return dispatch.batches

    # Each request flushes on its own soon-call: two single-item batches.
    assert run(scenario()) == [(("g",), [0]), (("g",), [1])]


def test_backpressure_raises_queue_full():
    async def scenario():
        dispatch = Recorder(delay=0.05)
        queue = BatchQueue(dispatch, max_batch=1, max_wait=0.0,
                           max_pending=2)
        first = queue.enqueue(("g",), 0)
        second = queue.enqueue(("g",), 1)
        with pytest.raises(QueueFull) as excinfo:
            queue.enqueue(("g",), 2)
        assert excinfo.value.retry_after >= 0
        results = await asyncio.gather(first, second)
        # Capacity freed: accepted again.
        third = await queue.enqueue(("g",), 3)
        return results, third

    results, third = run(scenario())
    assert results == ["r:0", "r:1"]
    assert third == "r:3"


def test_dispatch_failure_rejects_only_its_batch():
    async def scenario():
        dispatch = Recorder(fail_on=("bad",))
        queue = BatchQueue(dispatch, max_batch=2, max_wait=0.01)
        good = [queue.enqueue(("good",), i) for i in range(2)]
        bad = [queue.enqueue(("bad",), i) for i in range(2)]
        good_results = await asyncio.gather(*good)
        bad_results = await asyncio.gather(*bad, return_exceptions=True)
        return good_results, bad_results, queue.pending

    good_results, bad_results, pending = run(scenario())
    assert good_results == ["r:0", "r:1"]
    assert all(isinstance(r, RuntimeError) for r in bad_results)
    assert pending == 0


def test_result_count_mismatch_rejects_batch():
    async def bad_dispatch(group_key, items):
        return ["only-one"]

    async def scenario():
        queue = BatchQueue(bad_dispatch, max_batch=2, max_wait=0.01)
        futures = [queue.enqueue(("g",), i) for i in range(2)]
        return await asyncio.gather(*futures, return_exceptions=True)

    results = run(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_drain_flushes_queued_items_and_closes():
    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=100, max_wait=60.0)
        futures = [queue.enqueue(("g",), i) for i in range(3)]
        await queue.drain()
        results = await asyncio.gather(*futures)
        with pytest.raises(RuntimeError, match="draining"):
            queue.enqueue(("g",), 99)
        return dispatch.batches, results

    batches, results = run(scenario())
    # Drain flushed the partial batch without waiting out the timer.
    assert batches == [(("g",), [0, 1, 2])]
    assert results == ["r:0", "r:1", "r:2"]


def test_on_batch_callback_sees_kind_and_size():
    seen = []

    async def scenario():
        dispatch = Recorder()
        queue = BatchQueue(dispatch, max_batch=2, max_wait=0.01,
                           on_batch=lambda kind, size:
                           seen.append((kind, size)))
        await asyncio.gather(*[
            queue.enqueue(("montecarlo", "hvt"), i) for i in range(2)
        ])
        return seen

    assert run(scenario()) == [("montecarlo", 2)]


def test_constructor_validation():
    async def noop(group_key, items):
        return items

    with pytest.raises(ValueError):
        BatchQueue(noop, max_batch=0)
    with pytest.raises(ValueError):
        BatchQueue(noop, max_wait=-1.0)
