"""Calibration derivations and the power-law fitting utility."""

import math

import numpy as np
import pytest

from repro.devices import DeviceLibrary
from repro.devices.calibration import (
    CalibrationReport,
    derive_gamma_s,
    derive_vt_lvt,
    device_ratios,
    fit_power_law,
    require_within,
)
from repro.errors import CalibrationError


def test_derive_vt_lvt_closed_form():
    vt_lvt = derive_vt_lvt(0.45, 0.335, ion_ratio=2.0, alpha=1.3)
    # 0.45 - 2**(1/1.3) * 0.115
    assert vt_lvt == pytest.approx(0.45 - 2 ** (1 / 1.3) * 0.115)
    assert 0.24 < vt_lvt < 0.27


def test_derive_gamma_s_closed_form():
    gamma = derive_gamma_s(0.335, 0.254, ioff_ratio=20.0, alpha=1.3)
    assert gamma == pytest.approx(1.3 * 0.081 / math.log(20.0))


def test_fit_power_law_recovers_synthetic():
    a_true, b_true, vt_true = 1.3, 9.5e-5, 0.335
    v = np.linspace(0.45, 0.80, 12)
    i = b_true * (v - vt_true) ** a_true
    a, b, vt = fit_power_law(v, i)
    assert a == pytest.approx(a_true, rel=0.02)
    assert b == pytest.approx(b_true, rel=0.05)
    assert vt == pytest.approx(vt_true, abs=0.005)


def test_fit_power_law_with_noise():
    rng = np.random.default_rng(3)
    v = np.linspace(0.5, 0.9, 20)
    i = 2e-4 * (v - 0.30) ** 1.5 * np.exp(rng.normal(0, 0.01, v.shape))
    a, _b, vt = fit_power_law(v, i)
    assert a == pytest.approx(1.5, rel=0.1)
    assert vt == pytest.approx(0.30, abs=0.03)


def test_fit_power_law_input_validation():
    with pytest.raises(ValueError):
        fit_power_law([0.5, 0.6], [1e-6, 2e-6])  # too few points
    with pytest.raises(ValueError):
        fit_power_law([0.5, 0.6, 0.7], [1e-6, -2e-6, 3e-6])


def test_device_ratios_default_library():
    ion_ratio, ioff_ratio, gain = device_ratios()
    assert ion_ratio == pytest.approx(2.0, rel=0.08)
    assert ioff_ratio == pytest.approx(20.0, rel=0.10)
    assert gain == pytest.approx(10.0, rel=0.15)


def test_calibration_report_rows():
    report = CalibrationReport(ion_ratio=2.0, ioff_ratio=20.0)
    rows = report.rows()
    names = [r[0] for r in rows]
    assert "Ion ratio LVT/HVT" in names
    assert all(len(r) == 3 for r in rows)


def test_require_within_passes():
    require_within("x", 1.02, 1.0, rel_tol=0.05)


def test_require_within_raises():
    with pytest.raises(CalibrationError):
        require_within("x", 1.2, 1.0, rel_tol=0.05)


def test_require_within_rejects_zero_target():
    with pytest.raises(ValueError):
        require_within("x", 1.0, 0.0, rel_tol=0.05)
