"""Write margin: flip-voltage search and assist behavior."""

import pytest

from repro.cell import CellBias, cell_flips, flip_wordline_voltage, write_margin
from repro.cell.write import settle_from_one
from repro.errors import CharacterizationError

VDD = 0.45


@pytest.fixture(scope="module")
def hvt_flip(hvt_cell):
    return flip_wordline_voltage(hvt_cell, vdd=VDD, resolution=0.002)


def test_settle_holds_state_with_wl_off(hvt_cell):
    bias = CellBias.write(VDD, v_wl=0.0)
    v_q, v_qb = settle_from_one(hvt_cell, bias)
    assert v_q > 0.9 * VDD
    assert v_qb < 0.1 * VDD


def test_cell_flips_with_strong_wordline(hvt_cell):
    bias = CellBias.write(VDD, v_wl=0.7)
    assert cell_flips(hvt_cell, bias)


def test_cell_does_not_flip_with_weak_wordline(hvt_cell):
    bias = CellBias.write(VDD, v_wl=0.2)
    assert not cell_flips(hvt_cell, bias)


def test_flip_voltage_in_plausible_window(hvt_flip):
    # The paper implies ~382 mV for its HVT cell (540 - 158).
    assert 0.30 < hvt_flip < 0.42


def test_flip_is_threshold(hvt_cell, hvt_flip):
    assert cell_flips(hvt_cell, CellBias.write(VDD, v_wl=hvt_flip + 0.01))
    assert not cell_flips(hvt_cell,
                          CellBias.write(VDD, v_wl=hvt_flip - 0.01))


def test_write_margin_definition(hvt_cell, hvt_flip):
    wm = write_margin(hvt_cell, v_wl_applied=0.54, vdd=VDD,
                      resolution=0.002)
    assert wm == pytest.approx(0.54 - hvt_flip, abs=0.004)


def test_wlod_raises_wm(hvt_cell):
    wm_nominal = write_margin(hvt_cell, v_wl_applied=VDD, vdd=VDD,
                              resolution=0.005)
    wm_boosted = write_margin(hvt_cell, v_wl_applied=0.54, vdd=VDD,
                              resolution=0.005)
    assert wm_boosted == pytest.approx(wm_nominal + 0.09, abs=0.012)


def test_negative_bl_lowers_flip_voltage(hvt_cell, hvt_flip):
    flip_nbl = flip_wordline_voltage(hvt_cell, vdd=VDD, v_bl_low=-0.1,
                                     resolution=0.002)
    assert flip_nbl < hvt_flip - 0.02


def test_lvt_flips_easier_than_hvt(lvt_cell, hvt_flip):
    lvt_flip = flip_wordline_voltage(lvt_cell, vdd=VDD, resolution=0.002)
    assert lvt_flip < hvt_flip


def test_unwritable_cell_raises(hvt_cell):
    # A pull-up made absurdly strong cannot be overpowered by the
    # single-fin access transistor within the search window.
    monster = hvt_cell.with_overrides({
        "pu_l": hvt_cell.params("pu_l").scaled_drive(50.0),
        "pu_r": hvt_cell.params("pu_r").scaled_drive(50.0),
    })
    with pytest.raises(CharacterizationError):
        flip_wordline_voltage(monster, vdd=VDD, v_wl_max=0.5,
                              resolution=0.005)


def test_bitline_write_margin_positive_at_wlod(hvt_cell):
    from repro.cell import bitline_write_margin

    bwm = bitline_write_margin(hvt_cell, v_wl=0.54, vdd=VDD,
                               resolution=0.005)
    assert 0.02 < bwm < VDD


def test_bitline_write_margin_grows_with_wordline(hvt_cell):
    from repro.cell import bitline_write_margin

    weak = bitline_write_margin(hvt_cell, v_wl=0.45, vdd=VDD,
                                resolution=0.005)
    strong = bitline_write_margin(hvt_cell, v_wl=0.60, vdd=VDD,
                                  resolution=0.005)
    assert strong > weak


def test_bitline_write_margin_zero_when_unwritable(hvt_cell):
    from repro.cell import bitline_write_margin

    assert bitline_write_margin(hvt_cell, v_wl=0.20, vdd=VDD,
                                resolution=0.01) == 0.0
