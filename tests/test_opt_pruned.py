"""Bound-and-prune engine equivalence (the tentpole's contract).

The pruned engine derives an admissible lower bound on every ``(n_r,
V_SSC)`` tile's best EDP and skips tiles that provably cannot beat the
incumbent, scoring the survivors through the gathered broadcast
dispatch.  It must return the *same answer* as the reference slice loop
— same design, same metrics, same margins, same tie resolution — over
every cell of the paper's study matrix, while evaluating at most as
many points.  With ``keep_landscape=True`` pruning is disabled and the
whole visit is bit-identical (including ``n_evaluated``).
"""

import numpy as np
import pytest

from repro import perf
from repro.analysis.experiments import (
    CAPACITIES_BYTES,
    FLAVORS,
    METHODS,
)
from repro.errors import DesignSpaceError
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy
from repro.opt.bounds import tile_lower_bounds

#: The full 20-cell study matrix (5 capacities x 2 flavors x 2 methods).
STUDY_CELLS = [
    (flavor, method, capacity)
    for flavor in FLAVORS
    for method in METHODS
    for capacity in CAPACITIES_BYTES
]


def _optimizer(paper_session, flavor, model=None):
    return ExhaustiveOptimizer(
        model or paper_session.model(flavor), DesignSpace(),
        paper_session.constraint(flavor),
    )


def _optimize(paper_session, flavor, method, capacity_bytes, engine,
              keep_landscape=True, model=None):
    optimizer = _optimizer(paper_session, flavor, model=model)
    policy = make_policy(method, paper_session.yield_levels(flavor))
    return optimizer.optimize(capacity_bytes * 8, policy,
                              keep_landscape=keep_landscape,
                              engine=engine)


def _assert_identical(a, b):
    assert a.design == b.design
    assert a.metrics.edp == b.metrics.edp
    assert a.metrics.d_array == b.metrics.d_array
    assert a.metrics.e_total == b.metrics.e_total
    assert a.margins == b.margins
    assert a.n_evaluated == b.n_evaluated
    assert len(a.landscape) == len(b.landscape)
    for pa, pb in zip(a.landscape, b.landscape):
        assert pa == pb


def _assert_same_answer(pruned, ref):
    """Pruned-mode equality: same winner, fewer (or equal) evaluations."""
    assert pruned.design == ref.design
    assert pruned.metrics.edp == ref.metrics.edp
    assert pruned.metrics.d_array == ref.metrics.d_array
    assert pruned.metrics.e_total == ref.metrics.e_total
    assert pruned.margins == ref.margins
    assert pruned.n_evaluated <= ref.n_evaluated


@pytest.mark.parametrize("flavor,method,capacity_bytes", STUDY_CELLS)
def test_pruned_parity_on_study_matrix(paper_session, flavor, method,
                                       capacity_bytes):
    loop = _optimize(paper_session, flavor, method, capacity_bytes,
                     "loop")
    full = _optimize(paper_session, flavor, method, capacity_bytes,
                     "pruned", keep_landscape=True)
    pruned = _optimize(paper_session, flavor, method, capacity_bytes,
                       "pruned", keep_landscape=False)
    _assert_identical(full, loop)
    _assert_same_answer(pruned, loop)


@pytest.mark.parametrize("block_elements", [1, 10 ** 9])
def test_pruned_blocked_and_unblocked_match_loop(paper_session,
                                                 block_elements):
    loop = _optimize(paper_session, "hvt", "M2", 1024, "loop")
    model = paper_session.model("hvt")
    original = model.broadcast_block_elements
    model.broadcast_block_elements = block_elements
    try:
        full = _optimize(paper_session, "hvt", "M2", 1024, "pruned",
                         keep_landscape=True, model=model)
        pruned = _optimize(paper_session, "hvt", "M2", 1024, "pruned",
                           keep_landscape=False, model=model)
    finally:
        model.broadcast_block_elements = original
    _assert_identical(full, loop)
    _assert_same_answer(pruned, loop)


def test_pruning_skips_at_least_half_the_space(paper_session):
    """The acceptance cell: 16KB/HVT/M2 prunes >= 50% of the space."""
    loop = _optimize(paper_session, "hvt", "M2", 16384, "loop")
    pruned = _optimize(paper_session, "hvt", "M2", 16384, "pruned",
                       keep_landscape=False)
    _assert_same_answer(pruned, loop)
    assert pruned.n_evaluated <= loop.n_evaluated // 2


def test_pruned_records_perf_counters(paper_session):
    def counter(name):
        return perf.get_registry().snapshot()["counters"].get(name, 0)

    before_tiles = counter("opt.pruned.tiles_pruned")
    before_points = counter("opt.pruned.points_evaluated")
    pruned = _optimize(paper_session, "hvt", "M2", 16384, "pruned",
                       keep_landscape=False)
    assert counter("opt.pruned.tiles_pruned") > before_tiles
    assert (counter("opt.pruned.points_evaluated") - before_points
            == pruned.n_evaluated)


def test_bounds_are_admissible(paper_session):
    """Every tile's bound is <= the tile's actual best metrics."""
    optimizer = _optimizer(paper_session, "hvt")
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    capacity_bits = 16384 * 8
    feasible = optimizer._feasible_v_ssc(policy)
    bounds = tile_lower_bounds(optimizer.model, optimizer.space,
                               capacity_bits, policy, feasible)
    result = optimizer.optimize(capacity_bits, policy,
                                keep_landscape=True, engine="fused")
    d_lb = bounds.d_array.reshape(-1)
    e_lb = bounds.e_total.reshape(-1)
    edp_lb = bounds.edp.reshape(-1)
    # The landscape visits tiles r-major/s-minor — the same flat order
    # as the bound grids; each landscape point is one point of its tile,
    # so every bound must sit at or below it.
    assert len(result.landscape) == bounds.n_tiles
    for tile, point in enumerate(result.landscape):
        assert d_lb[tile] <= point.d_array
        assert e_lb[tile] <= point.e_total
        assert edp_lb[tile] <= point.edp


def test_bounds_tighten_with_fin_range(paper_session):
    """Bounding a sub-range of fins can only raise (tighten) the bound."""
    optimizer = _optimizer(paper_session, "hvt")
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    space = optimizer.space
    capacity_bits = 16384 * 8
    feasible = optimizer._feasible_v_ssc(policy)
    wide = tile_lower_bounds(optimizer.model, space, capacity_bits,
                             policy, feasible)
    narrow_space = DesignSpace(n_pre_max=space.n_pre_values[-1] // 2,
                               n_wr_max=space.n_wr_values[-1] // 2)
    narrow = tile_lower_bounds(optimizer.model, narrow_space,
                               capacity_bits, policy, feasible)
    assert np.all(narrow.edp >= wide.edp)


def test_pruned_infeasible_space_raises(paper_session):
    class Infeasible:
        flavor = "hvt"

        def satisfied_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
            return np.zeros(len(v_ssc_values), dtype=bool)

        def satisfied(self, *args, **kwargs):
            return False

        def margins(self, *args, **kwargs):
            return (0.0, 0.0, 0.0)

    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(), Infeasible()
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    with pytest.raises(DesignSpaceError):
        optimizer.optimize(1024 * 8, policy, engine="pruned")
    with pytest.raises(DesignSpaceError):
        optimizer.pareto(1024 * 8, policy, engine="pruned")


def test_unknown_engine_still_rejected(paper_session):
    optimizer = _optimizer(paper_session, "hvt")
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    with pytest.raises(ValueError, match="pruned"):
        optimizer.optimize(1024 * 8, policy, engine="nope")
