"""Yield constraints (fixed-delta and trust modes)."""

import pytest

from repro.opt import YieldConstraint


@pytest.fixture(scope="module")
def constraint(library, hvt_char):
    c = YieldConstraint(library, "hvt", delta=0.35 * library.vdd)
    c._v_flip = hvt_char.v_wl_flip  # reuse the characterized flip point
    return c


def test_margins_structure(constraint):
    hsnm, rsnm, wm = constraint.margins(0.55, -0.1, 0.55)
    assert hsnm > 0 and rsnm > 0 and wm > 0


def test_satisfied_at_paper_operating_point(constraint):
    assert constraint.satisfied(0.55, -0.1, 0.55)


def test_unsatisfied_without_assists(constraint, library):
    # No boost: RSNM below delta (the premise of the whole paper).
    assert not constraint.satisfied(library.vdd, 0.0, 0.55)


def test_unsatisfied_with_weak_wordline(constraint):
    # WM fails when the write wordline is barely above the flip point.
    assert not constraint.satisfied(0.55, 0.0, 0.40)


def test_rsnm_memoization(constraint):
    first = constraint.rsnm(0.55, -0.05)
    again = constraint.rsnm(0.55, -0.05)
    assert first == again
    assert (0.55, -0.05) in constraint._rsnm_cache


def test_hsnm_independent_of_assists(constraint):
    assert constraint.hsnm() == constraint.hsnm()
    assert constraint.hsnm() > constraint.delta


def test_wm_linear_in_wordline(constraint):
    assert constraint.wm(0.60) - constraint.wm(0.50) == pytest.approx(0.10)


def test_trust_fixed_rails_skips_wm(library, hvt_char):
    trusting = YieldConstraint(
        library, "hvt", delta=0.35 * library.vdd, trust_fixed_rails=True
    )
    trusting._v_flip = hvt_char.v_wl_flip
    # A wordline that fails WM in strict mode passes in trust mode
    # (the rails are pinned to paper-validated values).
    assert trusting.satisfied(0.55, 0.0, 0.40)
    strict = YieldConstraint(library, "hvt", delta=0.35 * library.vdd)
    strict._v_flip = hvt_char.v_wl_flip
    assert not strict.satisfied(0.55, 0.0, 0.40)
