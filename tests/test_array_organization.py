"""Array organization validation and address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.array import ArrayOrganization
from repro.errors import DesignSpaceError


def test_basic_properties():
    org = ArrayOrganization(n_r=128, n_c=64)
    assert org.capacity_bits == 8192
    assert org.capacity_bytes == 1024
    assert org.row_address_bits == 7
    assert str(org) == "128x64 (W=64)"


def test_power_of_two_validation():
    with pytest.raises(DesignSpaceError):
        ArrayOrganization(n_r=100, n_c=64)
    with pytest.raises(DesignSpaceError):
        ArrayOrganization(n_r=128, n_c=48)
    with pytest.raises(DesignSpaceError):
        ArrayOrganization(n_r=128, n_c=64, word_bits=60)


def test_column_mux_cases():
    no_mux = ArrayOrganization(n_r=64, n_c=64)
    assert not no_mux.has_column_mux
    assert no_mux.column_address_bits == 0
    narrow = ArrayOrganization(n_r=64, n_c=16)
    assert not narrow.has_column_mux
    mux = ArrayOrganization(n_r=64, n_c=256)
    assert mux.has_column_mux
    assert mux.column_address_bits == 2
    assert mux.words_per_row == 4


def test_from_capacity():
    org = ArrayOrganization.from_capacity(4096 * 8, 512)
    assert org.n_c == 64
    with pytest.raises(DesignSpaceError):
        ArrayOrganization.from_capacity(4096 * 8, 3)
    with pytest.raises(DesignSpaceError):
        ArrayOrganization.from_capacity(1000, 8)


@given(st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=10))
def test_capacity_identity(log_r, log_c):
    org = ArrayOrganization(n_r=2 ** log_r, n_c=2 ** log_c)
    assert org.capacity_bits == 2 ** (log_r + log_c)
    assert org.row_address_bits == log_r


@given(st.integers(min_value=6, max_value=12))
def test_column_address_bits_consistency(log_c):
    org = ArrayOrganization(n_r=64, n_c=2 ** log_c, word_bits=64)
    assert org.n_c == org.words_per_row * 64 or not org.has_column_mux
    if org.has_column_mux:
        assert 2 ** org.column_address_bits == org.n_c // 64
