"""Fused full-space engine equivalence (the tentpole's contract).

The fused engine evaluates one policy's entire ``n_r x V_SSC x N_pre x
N_wr`` space in a *single* broadcast ``model.evaluate`` call.  It must
return bit-identical results to both the reference slice loop and the
per-row vectorized engine — same design, same EDP, same evaluation
count, same landscape — over every cell of the paper's study matrix,
through both the unblocked 4-D path and the cache-blocked executor.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    CAPACITIES_BYTES,
    FLAVORS,
    METHODS,
)
from repro.errors import DesignSpaceError
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy

#: The full 20-cell study matrix (5 capacities x 2 flavors x 2 methods).
STUDY_CELLS = [
    (flavor, method, capacity)
    for flavor in FLAVORS
    for method in METHODS
    for capacity in CAPACITIES_BYTES
]


class CountingModel:
    """Pass-through model wrapper tallying evaluate() calls by kind."""

    def __init__(self, model):
        self._model = model
        self.broadcast_calls = 0
        self.scalar_calls = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def evaluate(self, capacity_bits, design):
        if np.ndim(design.n_r) > 0:
            self.broadcast_calls += 1
        else:
            self.scalar_calls += 1
        return self._model.evaluate(capacity_bits, design)


def _optimize(paper_session, flavor, method, capacity_bytes, engine,
              model=None):
    model = model or paper_session.model(flavor)
    optimizer = ExhaustiveOptimizer(
        model, DesignSpace(), paper_session.constraint(flavor)
    )
    policy = make_policy(method, paper_session.yield_levels(flavor))
    return optimizer.optimize(capacity_bytes * 8, policy,
                              keep_landscape=True, engine=engine)


def _assert_identical(a, b):
    assert a.design == b.design
    assert a.metrics.edp == b.metrics.edp
    assert a.metrics.d_array == b.metrics.d_array
    assert a.metrics.e_total == b.metrics.e_total
    assert a.margins == b.margins
    assert a.n_evaluated == b.n_evaluated
    assert len(a.landscape) == len(b.landscape)
    for pa, pb in zip(a.landscape, b.landscape):
        assert pa == pb


@pytest.mark.parametrize("flavor,method,capacity_bytes", STUDY_CELLS)
def test_three_way_parity_on_study_matrix(paper_session, flavor, method,
                                          capacity_bytes):
    loop = _optimize(paper_session, flavor, method, capacity_bytes,
                     "loop")
    vec = _optimize(paper_session, flavor, method, capacity_bytes,
                    "vectorized")
    fused = _optimize(paper_session, flavor, method, capacity_bytes,
                      "fused")
    _assert_identical(fused, loop)
    _assert_identical(vec, loop)


@pytest.mark.parametrize("flavor,method,capacity_bytes",
                         [("hvt", "M2", 16384), ("lvt", "M1", 128)])
def test_fused_search_is_one_model_call(paper_session, flavor, method,
                                        capacity_bytes):
    model = CountingModel(paper_session.model(flavor))
    result = _optimize(paper_session, flavor, method, capacity_bytes,
                       "fused", model=model)
    # One broadcast call covers the whole feasible space; the only
    # other evaluation is the scalar re-evaluation of the winner.
    assert model.broadcast_calls == 1
    assert model.scalar_calls == 1
    assert result.n_evaluated > 0


@pytest.mark.parametrize("block_elements", [1, 10 ** 9])
def test_fused_blocked_and_unblocked_match_loop(paper_session,
                                                block_elements):
    loop = _optimize(paper_session, "hvt", "M2", 1024, "loop")
    model = paper_session.model("hvt")
    model.broadcast_block_elements = block_elements
    fused = _optimize(paper_session, "hvt", "M2", 1024, "fused",
                      model=model)
    _assert_identical(fused, loop)


def test_fused_infeasible_space_raises(paper_session):
    class Infeasible:
        flavor = "hvt"

        def satisfied_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
            return np.zeros(len(v_ssc_values), dtype=bool)

        def satisfied(self, *args, **kwargs):
            return False

        def margins(self, *args, **kwargs):
            return (0.0, 0.0, 0.0)

    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(), Infeasible()
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    with pytest.raises(DesignSpaceError):
        optimizer.optimize(1024 * 8, policy, engine="fused")


# ---------------------------------------------------------------------------
# Policy-batched optimize_many (one dispatch per cell's policy set)
# ---------------------------------------------------------------------------

#: The 10 (flavor, capacity) cells; each one policy-batches all METHODS,
#: so together they still cover the full 20-cell study matrix.
POLICY_BATCH_CELLS = [
    (flavor, capacity)
    for flavor in FLAVORS
    for capacity in CAPACITIES_BYTES
]


def _optimize_many(paper_session, flavor, capacity_bytes, model=None):
    model = model or paper_session.model(flavor)
    optimizer = ExhaustiveOptimizer(
        model, DesignSpace(), paper_session.constraint(flavor)
    )
    levels = paper_session.yield_levels(flavor)
    policies = [make_policy(method, levels) for method in METHODS]
    return optimizer.optimize_many(capacity_bytes * 8, policies,
                                   keep_landscape=True)


@pytest.mark.parametrize("flavor,capacity_bytes", POLICY_BATCH_CELLS)
def test_optimize_many_parity_on_study_matrix(paper_session, flavor,
                                              capacity_bytes):
    batched = _optimize_many(paper_session, flavor, capacity_bytes)
    assert len(batched) == len(METHODS)
    for method, result in zip(METHODS, batched):
        for engine in ("loop", "vectorized", "fused"):
            ref = _optimize(paper_session, flavor, method,
                            capacity_bytes, engine)
            _assert_identical(result, ref)


def test_optimize_many_is_one_broadcast_call(paper_session):
    model = CountingModel(paper_session.model("hvt"))
    results = _optimize_many(paper_session, "hvt", 16384, model=model)
    # One broadcast call scores every policy's whole space at once; the
    # only scalar calls are each winner's final re-evaluation.
    assert model.broadcast_calls == 1
    assert model.scalar_calls == len(METHODS)
    assert all(result.n_evaluated > 0 for result in results)


@pytest.mark.parametrize("block_elements", [1, 10 ** 9])
def test_optimize_many_blocked_and_unblocked_match_loop(paper_session,
                                                        block_elements):
    model = paper_session.model("hvt")
    original = model.broadcast_block_elements
    model.broadcast_block_elements = block_elements
    try:
        batched = _optimize_many(paper_session, "hvt", 1024, model=model)
    finally:
        model.broadcast_block_elements = original
    for method, result in zip(METHODS, batched):
        ref = _optimize(paper_session, "hvt", method, 1024, "loop")
        _assert_identical(result, ref)


def test_optimize_many_rejects_non_fused_engines(paper_session):
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt")
    )
    levels = paper_session.yield_levels("hvt")
    policies = [make_policy(method, levels) for method in METHODS]
    for engine in ("loop", "vectorized"):
        with pytest.raises(ValueError):
            optimizer.optimize_many(1024 * 8, policies, engine=engine)


def test_optimize_many_empty_policy_list(paper_session):
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt")
    )
    assert optimizer.optimize_many(1024 * 8, []) == []
