"""Monte Carlo yield analysis (small sample counts for speed)."""

import numpy as np
import pytest

from repro.cell import (
    MonteCarloResult,
    required_margin_fraction,
    run_cell_montecarlo,
    sample_cells,
)
from repro.cell.montecarlo import MetricSamples
from repro.devices import VariationModel

VDD = 0.45


@pytest.fixture(scope="module")
def mc_result(hvt_cell):
    return run_cell_montecarlo(
        hvt_cell, n_samples=40, seed=11, vdd=VDD,
        metrics=("hsnm", "rsnm"), snm_points=41,
    )


def test_sample_cells_are_perturbed(hvt_cell):
    cells = list(sample_cells(hvt_cell, 3, VariationModel(0.03), seed=0))
    assert len(cells) == 3
    for cell in cells:
        assert not cell.is_symmetric
        assert cell.params("pd_l").vt != hvt_cell.params("pd_l").vt


def test_sampling_reproducible(hvt_cell):
    a = [c.params("pd_l").vt
         for c in sample_cells(hvt_cell, 5, seed=9)]
    b = [c.params("pd_l").vt
         for c in sample_cells(hvt_cell, 5, seed=9)]
    assert a == b


def test_mc_metrics_present(mc_result):
    assert set(mc_result.metrics) == {"hsnm", "rsnm"}
    assert mc_result.n_samples == 40
    assert len(mc_result.metric("rsnm").values) == 40


def test_mc_spread_and_mean(mc_result, hvt_cell):
    from repro.cell import hold_snm

    samples = mc_result.metric("hsnm")
    assert samples.sigma > 0.002
    nominal = hold_snm(hvt_cell, VDD)
    assert samples.mean == pytest.approx(nominal, abs=5 * samples.sigma)


def test_mu_minus_k_sigma_ordering(mc_result):
    samples = mc_result.metric("rsnm")
    assert samples.mu_minus_k_sigma(0) == pytest.approx(samples.mean)
    assert samples.mu_minus_k_sigma(3) < samples.mu_minus_k_sigma(1)


def test_yield_at_extremes(mc_result):
    samples = mc_result.metric("hsnm")
    assert samples.yield_at(-1.0) == 1.0
    assert samples.yield_at(1.0) == 0.0


def test_worst_case_yield_bounds(mc_result):
    joint = mc_result.worst_case_yield(0.0)
    individual = min(
        mc_result.metric(name).yield_at(0.0)
        for name in ("hsnm", "rsnm")
    )
    assert 0.0 <= joint <= individual <= 1.0


def test_required_margin_fraction(mc_result):
    fractions = required_margin_fraction(mc_result, k=3.0, vdd=VDD)
    for value in fractions.values():
        assert 0.0 < value < 1.0


def test_metric_samples_single_value():
    samples = MetricSamples("x", np.array([0.1]))
    assert samples.sigma == 0.0
    assert samples.mean == pytest.approx(0.1)


def test_zero_variation_gives_nominal(hvt_cell):
    result = run_cell_montecarlo(
        hvt_cell, n_samples=3, vdd=VDD,
        variation=VariationModel(sigma_vt=0.0),
        metrics=("hsnm",), snm_points=41,
    )
    values = result.metric("hsnm").values
    assert float(np.std(values)) < 1e-9


# -- margin-distribution export: percentile and tail queries ---------------

def test_percentile_matches_order_statistics(mc_result):
    samples = mc_result.metric("rsnm")
    assert samples.percentile(0) == pytest.approx(samples.values.min())
    assert samples.percentile(100) == pytest.approx(samples.values.max())
    assert samples.percentile(50) == pytest.approx(
        float(np.median(samples.values)))
    p10, p90 = samples.percentile([10, 90])
    assert p10 < samples.percentile(50) < p90


def test_tail_probability_complements_yield(mc_result):
    samples = mc_result.metric("hsnm")
    floor = samples.percentile(25)
    assert samples.tail_probability(floor) \
        == pytest.approx(1.0 - samples.yield_at(floor))
    assert samples.tail_probability(-1.0) == 0.0
    assert samples.tail_probability(1.0) == 1.0


def test_tail_estimate_empirical_in_observed_regime(mc_result):
    samples = mc_result.metric("rsnm")
    # The median splits the sample: a deeply observed tail.
    est = samples.tail_estimate(samples.percentile(50))
    assert est.source == "empirical"
    assert est.empirical == pytest.approx(0.5, abs=0.05)
    assert est.n_samples == 40


def test_tail_estimate_gaussian_takeover_at_zero_failures(mc_result):
    # Margins at nominal rails never dip anywhere near zero in a
    # 40-sample run: the empirical estimator reads exactly 0 and the
    # Gaussian extrapolator must take over with a usable tail mass.
    samples = mc_result.metric("rsnm")
    est = samples.tail_estimate(0.0)
    assert est.tail_count == 0
    assert est.empirical == 0.0
    assert est.source == "gaussian"
    assert 0.0 < est.gaussian < 0.5
    assert est.p_fail == est.gaussian


def test_percentile_extremes_on_degenerate_samples():
    samples = MetricSamples("x", np.array([0.07]))
    assert samples.percentile(0) == pytest.approx(0.07)
    assert samples.percentile(100) == pytest.approx(0.07)
    assert samples.percentile(50) == pytest.approx(0.07)


def test_tail_probability_outside_support(mc_result):
    samples = mc_result.metric("hsnm")
    lo = float(samples.values.min())
    hi = float(samples.values.max())
    # The minimum itself is not a failure (strict <); just past the
    # maximum everything is.
    assert samples.tail_probability(lo) == 0.0
    assert samples.tail_probability(np.nextafter(hi, np.inf)) == 1.0


def test_tail_estimate_empty_tail_is_finite(mc_result):
    samples = mc_result.metric("hsnm")
    est = samples.tail_estimate(float(samples.values.min()) - 0.05)
    assert est.tail_count == 0
    assert est.empirical == 0.0
    assert np.isfinite(est.p_fail)
    assert 0.0 <= est.p_fail < 1e-3


def test_tail_estimate_zero_variance_steps_at_mean():
    flat = MetricSamples("x", np.full(32, 0.1))
    below = flat.tail_estimate(0.05)
    assert below.p_fail == 0.0
    assert below.source == "gaussian"
    above = flat.tail_estimate(0.15)
    assert above.p_fail == 1.0
    assert above.source == "empirical"


def test_tail_queries_engine_parity(hvt_cell):
    kwargs = dict(n_samples=8, seed=3, vdd=VDD,
                  metrics=("hsnm", "rsnm"), snm_points=41)
    batched = run_cell_montecarlo(hvt_cell, engine="batched", **kwargs)
    loop = run_cell_montecarlo(hvt_cell, engine="loop", **kwargs)
    for name in ("hsnm", "rsnm"):
        b, s = batched.metric(name), loop.metric(name)
        assert b.percentile([5, 50, 95]) == pytest.approx(
            s.percentile([5, 50, 95]))
        floor = b.percentile(50)
        assert b.tail_probability(floor) == s.tail_probability(floor)
        assert b.tail_estimate(0.0) == s.tail_estimate(0.0)
