"""Monte Carlo yield analysis (small sample counts for speed)."""

import numpy as np
import pytest

from repro.cell import (
    MonteCarloResult,
    required_margin_fraction,
    run_cell_montecarlo,
    sample_cells,
)
from repro.cell.montecarlo import MetricSamples
from repro.devices import VariationModel

VDD = 0.45


@pytest.fixture(scope="module")
def mc_result(hvt_cell):
    return run_cell_montecarlo(
        hvt_cell, n_samples=40, seed=11, vdd=VDD,
        metrics=("hsnm", "rsnm"), snm_points=41,
    )


def test_sample_cells_are_perturbed(hvt_cell):
    cells = list(sample_cells(hvt_cell, 3, VariationModel(0.03), seed=0))
    assert len(cells) == 3
    for cell in cells:
        assert not cell.is_symmetric
        assert cell.params("pd_l").vt != hvt_cell.params("pd_l").vt


def test_sampling_reproducible(hvt_cell):
    a = [c.params("pd_l").vt
         for c in sample_cells(hvt_cell, 5, seed=9)]
    b = [c.params("pd_l").vt
         for c in sample_cells(hvt_cell, 5, seed=9)]
    assert a == b


def test_mc_metrics_present(mc_result):
    assert set(mc_result.metrics) == {"hsnm", "rsnm"}
    assert mc_result.n_samples == 40
    assert len(mc_result.metric("rsnm").values) == 40


def test_mc_spread_and_mean(mc_result, hvt_cell):
    from repro.cell import hold_snm

    samples = mc_result.metric("hsnm")
    assert samples.sigma > 0.002
    nominal = hold_snm(hvt_cell, VDD)
    assert samples.mean == pytest.approx(nominal, abs=5 * samples.sigma)


def test_mu_minus_k_sigma_ordering(mc_result):
    samples = mc_result.metric("rsnm")
    assert samples.mu_minus_k_sigma(0) == pytest.approx(samples.mean)
    assert samples.mu_minus_k_sigma(3) < samples.mu_minus_k_sigma(1)


def test_yield_at_extremes(mc_result):
    samples = mc_result.metric("hsnm")
    assert samples.yield_at(-1.0) == 1.0
    assert samples.yield_at(1.0) == 0.0


def test_worst_case_yield_bounds(mc_result):
    joint = mc_result.worst_case_yield(0.0)
    individual = min(
        mc_result.metric(name).yield_at(0.0)
        for name in ("hsnm", "rsnm")
    )
    assert 0.0 <= joint <= individual <= 1.0


def test_required_margin_fraction(mc_result):
    fractions = required_margin_fraction(mc_result, k=3.0, vdd=VDD)
    for value in fractions.values():
        assert 0.0 < value < 1.0


def test_metric_samples_single_value():
    samples = MetricSamples("x", np.array([0.1]))
    assert samples.sigma == 0.0
    assert samples.mean == pytest.approx(0.1)


def test_zero_variation_gives_nominal(hvt_cell):
    result = run_cell_montecarlo(
        hvt_cell, n_samples=3, vdd=VDD,
        variation=VariationModel(sigma_vt=0.0),
        metrics=("hsnm",), snm_points=41,
    )
    values = result.metric("hsnm").values
    assert float(np.std(values)) < 1e-9
