"""Voltage-rail policies M1 / M2."""

import pytest

from repro.opt import (
    DesignSpace,
    YieldLevels,
    make_policy,
    policy_m1,
    policy_m2,
)


def test_m1_single_high_rail():
    levels = YieldLevels(v_ddc_min=0.550, v_wl_min=0.540)
    policy = policy_m1(levels)
    assert policy.v_ddc == pytest.approx(0.550)
    assert policy.v_wl == pytest.approx(0.550)
    assert not policy.v_ssc_free
    assert policy.extra_rails == 1


def test_m1_takes_the_larger_minimum():
    levels = YieldLevels(v_ddc_min=0.640, v_wl_min=0.490)
    policy = policy_m1(levels)
    assert policy.v_ddc == policy.v_wl == pytest.approx(0.640)


def test_m2_consolidates_close_rails():
    """The paper's HVT case: 550 vs 540 mV share one 550 mV pin."""
    levels = YieldLevels(v_ddc_min=0.550, v_wl_min=0.540)
    policy = policy_m2(levels)
    assert policy.v_ddc == policy.v_wl == pytest.approx(0.550)
    assert policy.extra_rails == 2
    assert policy.v_ssc_free


def test_m2_keeps_distant_rails_separate():
    """The paper's LVT case: 640 and 490 mV stay independent."""
    levels = YieldLevels(v_ddc_min=0.640, v_wl_min=0.490)
    policy = policy_m2(levels)
    assert policy.v_ddc == pytest.approx(0.640)
    assert policy.v_wl == pytest.approx(0.490)
    assert policy.extra_rails == 3


def test_v_ssc_candidates_by_method():
    levels = YieldLevels(v_ddc_min=0.550, v_wl_min=0.540)
    space = DesignSpace()
    assert policy_m1(levels).v_ssc_candidates(space) == (0.0,)
    assert len(policy_m2(levels).v_ssc_candidates(space)) == 25


def test_make_policy_dispatch():
    levels = YieldLevels(v_ddc_min=0.6, v_wl_min=0.5)
    assert make_policy("M1", levels).method == "M1"
    assert make_policy("M2", levels).method == "M2"
    with pytest.raises(ValueError):
        make_policy("M3", levels)


def test_negative_bl_policy():
    from repro.opt import policy_m2_negative_bl

    levels = YieldLevels(v_ddc_min=0.550, v_wl_min=0.540)
    policy = policy_m2_negative_bl(levels, vdd=0.45, v_bl=-0.15)
    assert policy.method == "M2-NBL"
    assert policy.v_wl == pytest.approx(0.45)   # no WL overdrive rail
    assert policy.v_bl == pytest.approx(-0.15)
    assert policy.v_ssc_free
    with pytest.raises(ValueError):
        policy_m2_negative_bl(levels, vdd=0.45, v_bl=0.05)
