"""Worker loop: spec validation, execution, checkpointing, dedup."""

import pytest

from repro.analysis.runner import StudyTask, execute_study_task
from repro.errors import JobError
from repro.jobs import (
    JobQueue,
    load_sweep_results,
    normalize_study_spec,
    run_worker,
    study_cell_keys,
)
from repro.jobs.worker import SessionProvider, execute_study_job
from repro.opt import DesignSpace
from repro.store import ExperimentStore, result_to_payload, sweep_key

SPEC = {"capacities": [128], "flavors": ["lvt"], "methods": ["M1", "M2"]}


# ---------------------------------------------------------------------------
# Spec validation / canonicalization
# ---------------------------------------------------------------------------

def test_normalize_fills_defaults():
    spec = normalize_study_spec({})
    assert spec["capacities"]           # paper defaults
    assert spec["flavors"] == ["lvt", "hvt"]
    assert spec["methods"] == ["M1", "M2"]
    assert spec["engine"] == "vectorized"
    assert spec["voltage_mode"] == "paper"
    assert spec["cache_path"] is None


def test_normalize_canonicalizes_order_and_dupes():
    spec = normalize_study_spec({
        "capacities": [512, 128, 128],
        "flavors": ["hvt", "lvt"],
        "methods": ["M2", "M1"],
    })
    assert spec["capacities"] == [128, 512]
    assert spec["flavors"] == ["lvt", "hvt"]    # reference order
    assert spec["methods"] == ["M1", "M2"]


def test_equivalent_specs_share_one_sweep_key():
    a = normalize_study_spec({"capacities": [512, 128],
                              "flavors": ["hvt", "lvt"]})
    b = normalize_study_spec({"capacities": [128, 512, 512],
                              "flavors": ["lvt", "hvt"],
                              "cache_path": "/elsewhere.json"})
    assert sweep_key(a) == sweep_key(b)


@pytest.mark.parametrize("bad", [
    "not a dict",
    {"surprise": True},
    {"capacities": [100]},              # not a power of two
    {"capacities": [True]},
    {"capacities": "128"},
    {"flavors": ["svt"]},
    {"methods": ["M3"]},
    {"engine": "quantum"},
    {"voltage_mode": "imaginary"},
    {"cache_path": 7},
])
def test_normalize_rejects_invalid_specs(bad):
    with pytest.raises(JobError):
        normalize_study_spec(bad)


def test_study_cell_keys_cover_the_matrix(paper_session):
    spec = normalize_study_spec(SPEC)
    cells = study_cell_keys(paper_session, spec)
    assert len(cells) == 2
    labels = [task.label for task, _ in cells]
    assert labels == ["128B/LVT/M1", "128B/LVT/M2"]
    assert len({key for _, key in cells}) == 2


# ---------------------------------------------------------------------------
# End-to-end worker runs (in-process, warm session)
# ---------------------------------------------------------------------------

@pytest.fixture()
def warm_sessions(paper_session):
    # default_cache_path must match the seed key, else a spec with
    # cache_path=None would trigger a fresh characterization.
    cache_path = paper_session.cache.path
    provider = SessionProvider(default_cache_path=cache_path)
    provider.seed(paper_session, cache_path=cache_path)
    return provider


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "jobs.db")


def test_worker_runs_job_and_stores_sweep(db_path, warm_sessions,
                                          paper_session):
    queue = JobQueue(db_path)
    job_id = queue.submit("study", SPEC)
    stats = run_worker(db_path, once=True, poll_interval=0.05,
                       sessions=warm_sessions, worker_id="t-w1")
    assert stats.jobs_done == 1
    assert stats.jobs_failed == 0
    assert stats.cells_computed == 2
    assert stats.cells_skipped == 0

    job = queue.get(job_id)
    assert job.state == "done"
    assert job.progress["completed"] == job.progress["total"] == 2
    store = ExperimentStore(db_path)
    sweep = load_sweep_results(store, job.result_key)
    assert set(sweep.results) == {(128, "lvt", "M1"), (128, "lvt", "M2")}

    # Bit-identity against a direct in-process run of the same cell.
    direct, _ = execute_study_task(paper_session, DesignSpace(),
                                   StudyTask(128, "lvt", "M1"))
    assert (result_to_payload(sweep.results[(128, "lvt", "M1")])
            == result_to_payload(direct))

    # Provenance names the job and the worker.
    spec = normalize_study_spec(SPEC)
    (_, cell_key), _ = study_cell_keys(paper_session, spec)
    provenance = store.provenance(cell_key)
    assert provenance["worker"] == "t-w1"
    assert provenance["inputs"]["job"] == job_id


def test_resubmitted_job_skips_stored_cells(db_path, warm_sessions):
    queue = JobQueue(db_path)
    queue.submit("study", SPEC)
    run_worker(db_path, once=True, poll_interval=0.05,
               sessions=warm_sessions)
    # Same matrix, scrambled spelling -> same keys -> all cells skipped.
    second = queue.submit("study", {"capacities": [128],
                                    "flavors": ["lvt"],
                                    "methods": ["M2", "M1"]})
    stats = run_worker(db_path, once=True, poll_interval=0.05,
                       sessions=warm_sessions)
    assert stats.jobs_done == 1
    assert stats.cells_computed == 0
    assert stats.cells_skipped == 2
    first_key = queue.get(queue.list_jobs(state="done")[-1].id).result_key
    assert queue.get(second).result_key == first_key


def test_partial_checkpoint_resume_computes_only_missing(
        db_path, warm_sessions, paper_session):
    """Simulated crash: first attempt dies after one cell; the retry
    must recompute exactly the other cell."""
    queue = JobQueue(db_path)
    store = ExperimentStore(db_path)
    spec = normalize_study_spec(SPEC)
    cells = study_cell_keys(paper_session, spec)

    # Pre-store cell 0 as if a crashed worker had checkpointed it.
    task0, key0 = cells[0]
    result0, _ = execute_study_task(paper_session, DesignSpace(), task0)
    store.put(key0, result_to_payload(result0))

    queue.submit("study", SPEC)
    stats = run_worker(db_path, once=True, poll_interval=0.05,
                       sessions=warm_sessions)
    assert stats.jobs_done == 1
    assert stats.cells_computed == 1
    assert stats.cells_skipped == 1
    assert store.has(cells[1][1])


def test_cancelled_job_is_lost_not_done(db_path, warm_sessions):
    queue = JobQueue(db_path)
    store = ExperimentStore(db_path)
    job_id = queue.submit("study", SPEC)
    job = queue.claim("t-w1")
    queue.cancel(job_id)
    outcome = execute_study_job(job, queue, store, "t-w1",
                                warm_sessions)
    assert outcome == "lost"
    assert queue.get(job_id).state == "cancelled"


def test_unknown_job_kind_fails(db_path, warm_sessions):
    queue = JobQueue(db_path)
    job_id = queue.submit("telepathy", {}, max_attempts=1)
    stats = run_worker(db_path, once=True, poll_interval=0.05,
                       sessions=warm_sessions)
    assert stats.jobs_failed == 1
    job = queue.get(job_id)
    assert job.state == "failed"
    assert "telepathy" in job.error


def test_invalid_spec_fails_the_job(db_path, warm_sessions):
    queue = JobQueue(db_path)
    job_id = queue.submit("study", {"capacities": [100]}, max_attempts=1)
    stats = run_worker(db_path, once=True, poll_interval=0.05,
                       sessions=warm_sessions)
    assert stats.jobs_failed == 1
    assert "powers of two" in queue.get(job_id).error


def test_max_jobs_limits_the_loop(db_path, warm_sessions):
    queue = JobQueue(db_path)
    queue.submit("study", SPEC)
    queue.submit("study", SPEC)
    stats = run_worker(db_path, max_jobs=2, poll_interval=0.05,
                       sessions=warm_sessions)
    assert stats.jobs_done == 2
    assert queue.counts()["done"] == 2


def test_load_sweep_results_missing_record_raises(db_path):
    store = ExperimentStore(db_path)
    with pytest.raises(JobError):
        load_sweep_results(store, "sweep-missing")


def test_load_sweep_results_missing_cell_raises(db_path):
    store = ExperimentStore(db_path)
    store.put("sweep-t", {"spec": {"voltage_mode": "paper"},
                          "cells": ["cell-gone"]})
    with pytest.raises(JobError):
        load_sweep_results(store, "sweep-t")
