"""Read-timing yield under variation."""

import numpy as np
import pytest

from repro.cell import read_timing_analysis
from repro.cell.timing_yield import ReadTimingResult
from repro.devices import VariationModel


@pytest.fixture(scope="module")
def timing(library, hvt_cell):
    return read_timing_analysis(
        library, hvt_cell, n_rows=64, n_samples=80,
        v_ddc=0.55, v_ssc=-0.1, seed=3,
    )


def test_distribution_basics(timing):
    assert timing.n_samples == 80
    assert timing.n_flipped < 8          # boosted cell: few disturb fails
    assert timing.sigma_delay > 0
    assert timing.mean_delay > 0


def test_timing_yield_monotone_in_sense_time(timing):
    times = np.linspace(0.5 * timing.mean_delay, 3.0 * timing.mean_delay, 6)
    yields = [timing.timing_yield(t) for t in times]
    assert all(a <= b + 1e-12 for a, b in zip(yields, yields[1:]))
    assert yields[-1] >= 0.9


def test_required_sense_time_covers_tail(timing):
    t_median = timing.required_sense_time(0.5)
    t_strict = timing.required_sense_time(0.99)
    assert t_strict > t_median
    achieved = timing.timing_yield(t_strict)
    assert achieved >= 0.98


def test_required_sense_time_validation(timing):
    with pytest.raises(ValueError):
        timing.required_sense_time(0.0)


def test_disturb_failures_cap_yield():
    result = ReadTimingResult(
        i_read_samples=np.array([1e-6] * 9), n_flipped=1,
        c_bitline=5e-15, delta_v_sense=0.12,
    )
    assert result.timing_yield(1.0) == pytest.approx(0.9)
    assert result.required_sense_time(0.95) == float("inf")


def test_sensing_voltage_yield_grows_with_time(timing):
    early = timing.sensing_voltage_yield(0.3 * timing.mean_delay)
    late = timing.sensing_voltage_yield(3.0 * timing.mean_delay)
    assert late > early


def test_shrinking_sense_window_eats_offset_margin(timing):
    """The paper's 'reducing DeltaV_S is difficult' argument: at the
    nominal sensing time the SA sees comfortable margin; at a third of
    it (equivalent to cutting DeltaV_S 3x) the yield drops."""
    nominal = timing.sensing_voltage_yield(timing.mean_delay)
    reduced = timing.sensing_voltage_yield(timing.mean_delay / 3.0)
    assert nominal > 0.95
    assert reduced < nominal


def test_negative_gnd_tightens_timing(library, hvt_cell):
    slow = read_timing_analysis(library, hvt_cell, n_samples=40,
                                v_ddc=0.55, v_ssc=0.0, seed=1)
    fast = read_timing_analysis(library, hvt_cell, n_samples=40,
                                v_ddc=0.55, v_ssc=-0.24, seed=1)
    assert fast.mean_delay < 0.5 * slow.mean_delay
    assert fast.required_sense_time(0.95) < slow.required_sense_time(0.95)


def test_zero_variation_collapses_spread(library, hvt_cell):
    result = read_timing_analysis(
        library, hvt_cell, n_samples=10,
        variation=VariationModel(sigma_vt=0.0), seed=0,
    )
    assert result.sigma_delay == pytest.approx(0.0, abs=1e-18)
