"""Consistent-hash ring: determinism, balance, minimal key movement."""

from __future__ import annotations

import pytest

from repro.fleet import DEFAULT_VNODES, HashRing, ring_hash

NODES = ["http://10.0.0.1:8787", "http://10.0.0.2:8787",
         "http://10.0.0.3:8787"]
KEYS = ["opt:%d" % n for n in range(2000)]


def test_ring_hash_is_stable_across_processes():
    # SHA-256 derived, so the literal value is part of the wire
    # contract: every replica must place nodes identically.
    assert ring_hash("opt:0") == int.from_bytes(
        __import__("hashlib").sha256(b"opt:0").digest()[:8], "big")


def test_same_members_same_ring_regardless_of_order():
    a = HashRing(NODES)
    b = HashRing(list(reversed(NODES)))
    assert a.nodes == b.nodes
    assert all(a.node_for(k) == b.node_for(k) for k in KEYS[:200])


def test_every_key_has_exactly_one_owner_among_members():
    ring = HashRing(NODES)
    for key in KEYS[:200]:
        assert ring.node_for(key) in ring.nodes


def test_spread_is_reasonably_balanced():
    ring = HashRing(NODES, vnodes=DEFAULT_VNODES)
    counts = ring.spread(KEYS)
    mean = len(KEYS) / len(NODES)
    assert all(count > 0 for count in counts.values())
    assert max(counts.values()) < 1.6 * mean


def test_preference_lists_distinct_nodes_owner_first():
    ring = HashRing(NODES)
    for key in KEYS[:100]:
        preference = ring.preference(key)
        assert preference[0] == ring.node_for(key)
        assert sorted(preference) == sorted(NODES)
    assert ring.preference(KEYS[0], limit=2) == \
        ring.preference(KEYS[0])[:2]


def test_membership_change_moves_few_keys():
    """Adding one node to N=3 should move roughly 1/4 of the keys and
    never remap a key between two surviving nodes."""
    before = HashRing(NODES)
    after = HashRing(NODES + ["http://10.0.0.4:8787"])
    moved = 0
    for key in KEYS:
        old, new = before.node_for(key), after.node_for(key)
        if old != new:
            moved += 1
            assert new == "http://10.0.0.4:8787"
    assert 0 < moved < 0.45 * len(KEYS)


def test_single_node_owns_everything():
    ring = HashRing([NODES[0]])
    assert all(ring.node_for(k) == NODES[0] for k in KEYS[:50])
    assert ring.preference(KEYS[0]) == [NODES[0]]


def test_ring_rejects_empty_and_bad_vnodes():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(NODES, vnodes=0)
