"""Vectorized-vs-loop search equivalence (the performance engine's
correctness contract).

The broadcast engine must return *bit-identical* results to the
reference slice-loop engine — same design, same EDP, same evaluation
count, same landscape — for every flavor/method at the paper's smallest
interesting and largest capacities.
"""

import numpy as np
import pytest

from repro.array import ArrayConfig, SRAMArrayModel
from repro.opt import (
    DesignSpace,
    ExhaustiveOptimizer,
    YieldConstraint,
    make_policy,
)

CASES = [
    (flavor, method, capacity_bytes)
    for flavor in ("lvt", "hvt")
    for method in ("M1", "M2")
    for capacity_bytes in (1024, 16384)
]


def _optimizer(paper_session, flavor):
    model = paper_session.model(flavor)
    constraint = paper_session.constraint(flavor)
    return ExhaustiveOptimizer(model, DesignSpace(), constraint)


@pytest.mark.parametrize("flavor,method,capacity_bytes", CASES)
def test_engines_bit_identical(paper_session, flavor, method,
                               capacity_bytes):
    optimizer = _optimizer(paper_session, flavor)
    policy = make_policy(method, paper_session.yield_levels(flavor))
    loop = optimizer.optimize(capacity_bytes * 8, policy,
                              keep_landscape=True, engine="loop")
    vec = optimizer.optimize(capacity_bytes * 8, policy,
                             keep_landscape=True, engine="vectorized")
    # The chosen design, exactly.
    assert vec.design == loop.design
    # The metrics at the optimum, bit for bit (both come from a scalar
    # re-evaluation of the same design, so equality is exact).
    assert vec.metrics.edp == loop.metrics.edp
    assert vec.metrics.d_array == loop.metrics.d_array
    assert vec.metrics.e_total == loop.metrics.e_total
    assert vec.margins == loop.margins
    # The bookkeeping.
    assert vec.n_evaluated == loop.n_evaluated
    # The landscape: same slices in the same order, bit-identical.
    assert len(vec.landscape) == len(loop.landscape)
    for v_point, l_point in zip(vec.landscape, loop.landscape):
        assert v_point == l_point


def test_unknown_engine_rejected(paper_session):
    optimizer = _optimizer(paper_session, "hvt")
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    with pytest.raises(ValueError):
        optimizer.optimize(1024 * 8, policy, engine="quantum")


def test_vectorized_is_default(paper_session):
    """optimize() without an engine argument matches the loop engine."""
    optimizer = _optimizer(paper_session, "hvt")
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    default = optimizer.optimize(1024 * 8, policy)
    loop = optimizer.optimize(1024 * 8, policy, engine="loop")
    assert default.design == loop.design
    assert default.metrics.edp == loop.metrics.edp


def test_vectorized_constraint_fallback(library, hvt_char):
    """A duck-typed constraint without satisfied_grid still works (the
    optimizer falls back to per-candidate satisfied() calls)."""

    class MinimalConstraint:
        flavor = "hvt"

        def __init__(self, inner):
            self.inner = inner

        def satisfied(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
            return self.inner.satisfied(v_ddc, v_ssc, v_wl, v_bl)

        def margins(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
            return self.inner.margins(v_ddc, v_ssc, v_wl, v_bl)

    inner = YieldConstraint(library, "hvt", delta=0.35 * library.vdd)
    inner._v_flip = hvt_char.v_wl_flip
    model = SRAMArrayModel(hvt_char, ArrayConfig())
    space = DesignSpace(n_pre_max=10, n_wr_max=5)
    from repro.opt import YieldLevels

    levels = YieldLevels(v_ddc_min=0.550, v_wl_min=0.540)
    policy = make_policy("M2", levels)
    reference = ExhaustiveOptimizer(model, space, inner).optimize(
        1024 * 8, policy, engine="loop"
    )
    ducked = ExhaustiveOptimizer(
        model, space, MinimalConstraint(inner)
    ).optimize(1024 * 8, policy, engine="vectorized")
    assert ducked.design == reference.design
    assert ducked.metrics.edp == reference.metrics.edp


def test_model_accepts_v_ssc_axis(paper_session):
    """Direct model check: a (S, 1, 1) V_SSC axis broadcasts to
    (S, P, W) metrics whose slices match scalar evaluations."""
    from repro.array import DesignPoint

    model = paper_session.model("hvt")
    space = DesignSpace(n_pre_max=6, n_wr_max=4)
    n_pre, n_wr = np.meshgrid(space.n_pre_values, space.n_wr_values,
                              indexing="ij")
    levels = np.array([-0.12, -0.06, 0.0])
    axis = levels.reshape(-1, 1, 1)
    batch = model.evaluate(4096 * 8, DesignPoint(
        n_r=512, n_c=64, n_pre=n_pre, n_wr=n_wr,
        v_ddc=0.550, v_ssc=axis, v_wl=0.550,
    ))
    assert batch.edp.shape == (3,) + n_pre.shape
    for s, v_ssc in enumerate(levels):
        single = model.evaluate(4096 * 8, DesignPoint(
            n_r=512, n_c=64, n_pre=n_pre, n_wr=n_wr,
            v_ddc=0.550, v_ssc=float(v_ssc), v_wl=0.550,
        ))
        assert np.array_equal(batch.edp[s], single.edp)
        assert np.array_equal(
            np.broadcast_to(batch.d_array, batch.edp.shape)[s],
            np.broadcast_to(single.d_array, single.edp.shape),
        )


def test_constraint_grid_matches_scalar(paper_session):
    """satisfied_grid / margins_grid agree with the scalar API."""
    constraint = paper_session.constraint("hvt")
    space = DesignSpace()
    levels = paper_session.yield_levels("hvt")
    policy = make_policy("M2", levels)
    candidates = [float(v) for v in policy.v_ssc_candidates(space)]
    mask = constraint.satisfied_grid(policy.v_ddc, candidates,
                                     policy.v_wl, policy.v_bl)
    hsnm, rsnm, wm = constraint.margins_grid(policy.v_ddc, candidates,
                                             policy.v_wl, policy.v_bl)
    assert mask.shape == (len(candidates),)
    for k, v_ssc in enumerate(candidates):
        assert bool(mask[k]) == constraint.satisfied(
            policy.v_ddc, v_ssc, policy.v_wl, policy.v_bl
        )
        s_hsnm, s_rsnm, s_wm = constraint.margins(
            policy.v_ddc, v_ssc, policy.v_wl, policy.v_bl
        )
        assert hsnm[k] == s_hsnm
        assert rsnm[k] == s_rsnm
        assert wm[k] == s_wm


def test_margin_memo_round_trip(library, hvt_char):
    """export/seed ships memoized margins to a fresh constraint, which
    then answers without recomputing butterflies."""
    source = YieldConstraint(library, "hvt", delta=0.35 * library.vdd)
    source._v_flip = hvt_char.v_wl_flip
    source.margins(0.550, -0.10, 0.550)
    source.margins(0.550, -0.20, 0.550)
    memo = source.export_margin_memo()
    assert len(memo["rsnm"]) == 2

    target = YieldConstraint(library, "hvt", delta=0.35 * library.vdd)
    target.seed_margin_memo(memo)
    assert target._rsnm_cache == source._rsnm_cache
    assert target._v_flip == source._v_flip
    assert target._hsnm == source._hsnm
    assert target.margins(0.550, -0.10, 0.550) == source.margins(
        0.550, -0.10, 0.550
    )
