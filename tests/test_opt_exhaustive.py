"""The exhaustive optimizer: optimality, feasibility, bookkeeping."""

import numpy as np
import pytest

from repro.array import ArrayConfig, DesignPoint, SRAMArrayModel
from repro.errors import DesignSpaceError
from repro.opt import (
    DesignSpace,
    ExhaustiveOptimizer,
    YieldConstraint,
    YieldLevels,
    make_policy,
)

CAPACITY_BITS = 1024 * 8  # 1KB


@pytest.fixture(scope="module")
def setup(library, hvt_char):
    model = SRAMArrayModel(hvt_char, ArrayConfig())
    constraint = YieldConstraint(library, "hvt", delta=0.35 * library.vdd)
    constraint._v_flip = hvt_char.v_wl_flip
    space = DesignSpace(n_pre_max=20, n_wr_max=8)  # trimmed for speed
    levels = YieldLevels(v_ddc_min=0.550, v_wl_min=0.540)
    return model, constraint, space, levels


@pytest.fixture(scope="module")
def m2_result(setup):
    model, constraint, space, levels = setup
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    return optimizer.optimize(CAPACITY_BITS, make_policy("M2", levels),
                              keep_landscape=True)


def test_result_feasible(m2_result):
    hsnm, rsnm, wm = m2_result.margins
    assert min(hsnm, rsnm, wm) >= 0.35 * 0.45 - 1e-9


def test_result_within_space(m2_result, setup):
    _model, _constraint, space, _levels = setup
    d = m2_result.design
    assert d.n_r * d.n_c == CAPACITY_BITS
    assert 1 <= d.n_pre <= space.n_pre_max
    assert 1 <= d.n_wr <= space.n_wr_max
    assert d.v_ssc in space.v_ssc_values


def test_optimum_beats_every_landscape_slice(m2_result):
    best = m2_result.metrics.edp
    for point in m2_result.landscape:
        assert best <= point.edp + 1e-30


def test_optimum_beats_random_samples(m2_result, setup):
    """Property-style check: no sampled feasible design beats the
    reported optimum."""
    model, constraint, space, _levels = setup
    rng = np.random.default_rng(5)
    d = m2_result.design
    for _ in range(60):
        n_r = int(rng.choice(space.row_counts(CAPACITY_BITS)))
        v_ssc = float(rng.choice(space.v_ssc_values))
        candidate = DesignPoint(
            n_r=n_r, n_c=CAPACITY_BITS // n_r,
            n_pre=int(rng.integers(1, space.n_pre_max + 1)),
            n_wr=int(rng.integers(1, space.n_wr_max + 1)),
            v_ddc=d.v_ddc, v_ssc=v_ssc, v_wl=d.v_wl,
        )
        if not constraint.satisfied(candidate.v_ddc, candidate.v_ssc,
                                    candidate.v_wl):
            continue
        metrics = model.evaluate(CAPACITY_BITS, candidate)
        assert m2_result.metrics.edp <= metrics.edp + 1e-30


def test_m2_exploits_negative_gnd(m2_result):
    assert m2_result.design.v_ssc < -0.05


def test_m1_stays_on_ground(setup):
    model, constraint, space, levels = setup
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    result = optimizer.optimize(CAPACITY_BITS, make_policy("M1", levels))
    assert result.design.v_ssc == 0.0
    assert result.metrics.edp > 0


def test_evaluation_count(m2_result, setup):
    _model, _constraint, space, _levels = setup
    per_slice = space.n_pre_max * space.n_wr_max
    assert m2_result.n_evaluated % per_slice == 0
    assert m2_result.n_evaluated > 0


def test_row_output(m2_result):
    row = m2_result.row()
    assert row["capacity"] == "1KB"
    assert row["config"] == "6T-HVT-M2"
    assert isinstance(row["N_pre"], int)


def test_infeasible_space_raises(setup):
    model, constraint, space, _levels = setup
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    # Rails far too low for any margin to clear delta.
    hopeless = make_policy(
        "M1", YieldLevels(v_ddc_min=0.450, v_wl_min=0.450)
    )
    with pytest.raises(DesignSpaceError):
        optimizer.optimize(CAPACITY_BITS, hopeless)


def test_summary_text(m2_result):
    text = m2_result.summary()
    assert "1KB" in text and "EDP" in text


def test_negative_bl_policy_optimizes(setup, paper_session):
    """The optimizer runs end-to-end under the negative-BL write policy
    and produces a feasible design whose write path uses the assist."""
    from repro.opt import policy_m2_negative_bl

    model, _constraint, space, levels = setup
    constraint = paper_session.constraint("hvt")
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    policy = policy_m2_negative_bl(levels, vdd=0.45, v_bl=-0.15)
    result = optimizer.optimize(CAPACITY_BITS, policy)
    assert result.design.v_bl == pytest.approx(-0.15)
    assert result.metrics.edp > 0
    assert result.method == "M2-NBL"
