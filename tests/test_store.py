"""Content-addressed experiment store: keys, round trips, lifecycle."""

import math
import time

import pytest

from repro.analysis.runner import StudyTask, execute_study_task
from repro.opt import DesignSpace
from repro.store import (
    ENGINE_VERSION,
    ExperimentStore,
    canonical_key,
    make_provenance,
    payload_json_safe,
    payload_to_result,
    result_to_payload,
    study_cell_key,
    sweep_key,
)


# ---------------------------------------------------------------------------
# Canonical keys
# ---------------------------------------------------------------------------

def test_canonical_key_is_deterministic_and_order_insensitive():
    a = canonical_key("cell", {"x": 1, "y": [1, 2], "z": {"a": 0.5}})
    b = canonical_key("cell", {"z": {"a": 0.5}, "y": [1, 2], "x": 1})
    assert a == b
    assert a.startswith("cell-")
    assert len(a) == len("cell-") + 40


def test_canonical_key_separates_kinds_and_fields():
    fields = {"x": 1}
    assert canonical_key("cell", fields) != canonical_key("sweep", fields)
    assert canonical_key("cell", fields) != canonical_key("cell", {"x": 2})


def test_canonical_key_rejects_non_finite_floats():
    with pytest.raises(ValueError):
        canonical_key("cell", {"x": float("nan")})


def test_study_cell_key_distinguishes_every_axis(paper_session):
    space = DesignSpace()

    def key(capacity=128, flavor="lvt", method="M1", engine="vectorized"):
        return study_cell_key(paper_session, space, capacity, flavor,
                              method, engine)

    base = key()
    assert key() == base                      # stable
    assert key(capacity=256) != base
    assert key(flavor="hvt") != base
    assert key(method="M2") != base
    assert key(engine="loop") != base


def test_sweep_key_ignores_cache_location():
    spec = {"capacities": [128], "flavors": ["lvt"], "methods": ["M1"],
            "engine": "vectorized", "voltage_mode": "paper"}
    a = sweep_key(dict(spec, cache_path="/tmp/a.json"))
    b = sweep_key(dict(spec, cache_path=None))
    assert a == b
    assert a.startswith("sweep-")


# ---------------------------------------------------------------------------
# Payload round trip
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def one_result(paper_session):
    result, _ = execute_study_task(
        paper_session, DesignSpace(), StudyTask(128, "lvt", "M1"))
    return result


def test_result_payload_round_trip_is_bit_identical(one_result):
    import json

    payload = result_to_payload(one_result)
    # Through JSON text, exactly as the SQLite store does it.
    rebuilt = payload_to_result(json.loads(json.dumps(payload)))
    assert rebuilt.capacity_bits == one_result.capacity_bits
    assert rebuilt.flavor == one_result.flavor
    assert rebuilt.method == one_result.method
    assert rebuilt.design == one_result.design
    assert rebuilt.metrics.edp == one_result.metrics.edp
    assert rebuilt.metrics.e_total == one_result.metrics.e_total
    assert rebuilt.metrics.d_array == one_result.metrics.d_array
    assert rebuilt.margins == tuple(one_result.margins)
    assert rebuilt.n_evaluated == one_result.n_evaluated
    # And the payload of the rebuilt result is the same dict again.
    assert result_to_payload(rebuilt) == payload


def test_payload_json_safe_nulls_non_finite():
    safe = payload_json_safe({
        "a": float("nan"),
        "b": [1.0, float("inf"), {"c": -float("inf")}],
        "d": "text",
    })
    assert safe["a"] is None
    assert safe["b"][0] == 1.0
    assert safe["b"][1] is None
    assert safe["b"][2]["c"] is None
    assert safe["d"] == "text"


def test_payload_json_safe_copies_deeply():
    original = {"nested": {"x": 1.0}}
    safe = payload_json_safe(original)
    safe["nested"]["x"] = 2.0
    assert original["nested"]["x"] == 1.0


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------

@pytest.fixture()
def store(tmp_path):
    return ExperimentStore(str(tmp_path / "store.db"))


def test_put_get_has_provenance(store):
    provenance = make_provenance(inputs={"why": "test"}, worker="w1")
    store.put("cell-abc", {"edp": 1.5e-25}, provenance)
    assert store.has("cell-abc")
    assert "cell-abc" in store
    assert store.get("cell-abc") == {"edp": 1.5e-25}
    stored = store.provenance("cell-abc")
    assert stored["inputs"] == {"why": "test"}
    assert stored["worker"] == "w1"
    assert stored["engine_version"] == ENGINE_VERSION
    assert stored["pid"] > 0


def test_get_missing_returns_none(store):
    assert store.get("cell-missing") is None
    assert not store.has("cell-missing")
    assert store.provenance("cell-missing") is None


def test_put_is_idempotent(store):
    store.put("cell-x", {"v": 1})
    store.put("cell-x", {"v": 1})
    assert store.count() == 1


def test_floats_survive_storage_bitwise(store):
    values = [3.364454957258898e-25, 0.1 + 0.2, 1e-300, -0.0]
    store.put("cell-floats", {"values": values})
    read = store.get("cell-floats")["values"]
    assert all(math.copysign(1, a) == math.copysign(1, b) and a == b
               for a, b in zip(read, values))


def test_kind_defaults_to_key_prefix(store):
    store.put("cell-1", {})
    store.put("sweep-1", {})
    assert store.count("cell") == 1
    assert store.count("sweep") == 1
    assert store.count() == 2
    kinds = {row["kind"] for row in store.ls()}
    assert kinds == {"cell", "sweep"}


def test_ls_filters_and_limits(store):
    for index in range(5):
        store.put("cell-%d" % index, {"i": index})
    store.put("sweep-0", {})
    assert len(store.ls(kind="cell")) == 5
    assert len(store.ls(kind="cell", limit=2)) == 2
    assert [row["key"] for row in store.ls(kind="sweep")] == ["sweep-0"]


def test_stats(store):
    store.put("cell-1", {"x": 1})
    store.put("sweep-1", {"y": [1, 2]})
    stats = store.stats()
    assert stats["total"] == 2
    assert stats["by_kind"]["cell"]["count"] == 1
    assert stats["by_kind"]["sweep"]["payload_bytes"] > 0


def test_delete(store):
    store.put("cell-1", {})
    assert store.delete("cell-1")
    assert not store.delete("cell-1")
    assert store.count() == 0


def test_gc_by_age_spares_recently_read(store):
    store.put("cell-old", {})
    store.put("cell-warm", {})
    time.sleep(0.05)
    store.get("cell-warm")          # touch refreshes last_used_at
    victims = store.gc(older_than_seconds=0.04)
    assert victims == ["cell-old"]
    assert store.has("cell-warm")
    assert not store.has("cell-old")


def test_gc_dry_run_deletes_nothing(store):
    store.put("cell-1", {})
    victims = store.gc(dry_run=True)
    assert victims == ["cell-1"]
    assert store.has("cell-1")


def test_gc_by_kind(store):
    store.put("cell-1", {})
    store.put("sweep-1", {})
    assert store.gc(kind="sweep") == ["sweep-1"]
    assert store.has("cell-1")


def test_store_shared_across_instances(tmp_path):
    path = str(tmp_path / "store.db")
    ExperimentStore(path).put("cell-1", {"v": 7})
    assert ExperimentStore(path).get("cell-1") == {"v": 7}
