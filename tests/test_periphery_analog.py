"""Sense amplifier, precharger, and write buffer characterizations."""

import pytest

from repro.periphery import (
    PRECHARGE_CURRENT_COEFF,
    WRITE_CURRENT_COEFF,
    characterize_senseamp,
    i_on_pfet,
    precharge_current,
    write_drive_current,
)


def test_senseamp_constants(hvt_char):
    sense = hvt_char.sense
    assert 1e-13 < sense.delay < 1e-10
    assert sense.energy > 0
    assert sense.delta_v_sense == pytest.approx(0.120)


def test_senseamp_smaller_split_is_slower(library):
    fast = characterize_senseamp(library, 0.120)
    slow = characterize_senseamp(library, 0.040)
    assert slow.delay > fast.delay


def test_i_on_pfet_matches_device(library):
    from repro.devices import FinFET

    expected = FinFET(library.pfet_lvt).ion(library.vdd)
    assert i_on_pfet(library) == pytest.approx(expected)


def test_precharge_current_scaling(library):
    base = precharge_current(library, 1)
    assert precharge_current(library, 10) == pytest.approx(10 * base)
    assert base == pytest.approx(
        PRECHARGE_CURRENT_COEFF * i_on_pfet(library)
    )


def test_i_on_tg_magnitude(hvt_char, library):
    from repro.devices import FinFET

    i_tg = hvt_char.i_on_tg
    nfet_ion = FinFET(library.nfet_lvt).ion(library.vdd)
    # A TG passes somewhere between one and two single-device ONs.
    assert 0.3 * nfet_ion < i_tg < 2.5 * nfet_ion


def test_write_drive_current_scaling(hvt_char):
    i_tg = hvt_char.i_on_tg
    assert write_drive_current(i_tg, 4) == pytest.approx(
        4 * WRITE_CURRENT_COEFF * i_tg
    )
