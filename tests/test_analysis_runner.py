"""The parallel study runner: determinism, telemetry, executor parity."""

import pytest

from repro.analysis import optimize_all
from repro.analysis.runner import (
    StudyTask,
    run_study,
    study_matrix,
)
from repro.errors import ReproError, StudyTaskError
from repro.opt import DesignSpace

#: Small matrix so the suite stays fast (2 x 2 x 2 = 8 tasks).
CAPACITIES = (128, 256)


class PoisonedSpace(DesignSpace):
    """Fails only the 256 B searches — module-level so the process pool
    can pickle it by reference."""

    def row_counts(self, capacity_bits):
        if capacity_bits == 256 * 8:
            raise RuntimeError("injected mid-study fault")
        return super().row_counts(capacity_bits)


def _edp_map(sweep):
    return {key: result.metrics.edp for key, result in sweep.results.items()}


def test_study_matrix_deterministic_order():
    tasks = study_matrix(CAPACITIES)
    assert tasks == study_matrix(CAPACITIES)
    assert len(tasks) == len(CAPACITIES) * 2 * 2
    assert tasks[0] == StudyTask(128, "lvt", "M1")
    assert len(set(task.key for task in tasks)) == len(tasks)


def test_serial_run_matches_optimize_all(paper_session):
    run = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=1)
    reference = optimize_all(paper_session, capacities=CAPACITIES)
    assert _edp_map(run.sweep) == _edp_map(reference)
    assert run.executor == "serial"
    assert run.workers == 1


def test_thread_pool_matches_serial(paper_session):
    serial = run_study(session=paper_session, capacities=CAPACITIES,
                       workers=1)
    threaded = run_study(session=paper_session, capacities=CAPACITIES,
                         workers=2, executor="thread")
    assert _edp_map(threaded.sweep) == _edp_map(serial.sweep)
    assert threaded.executor == "thread"
    assert threaded.workers == 2


def test_process_pool_matches_serial(paper_session):
    serial = run_study(session=paper_session, capacities=CAPACITIES,
                       workers=1)
    parallel = run_study(session=paper_session, capacities=CAPACITIES,
                         workers=2, executor="process")
    assert _edp_map(parallel.sweep) == _edp_map(serial.sweep)
    # Designs round-trip through pickling intact.
    for key, result in parallel.sweep.results.items():
        assert result.design == serial.sweep.results[key].design
        assert result.n_evaluated == serial.sweep.results[key].n_evaluated
    assert parallel.executor == "process"


def test_timing_telemetry(paper_session):
    run = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=1)
    tasks = study_matrix(CAPACITIES)
    assert len(run.timings) == len(tasks)
    # Telemetry rides in canonical task order regardless of completion.
    assert [t.task for t in run.timings] == list(tasks)
    for timing in run.timings:
        assert timing.seconds > 0
        assert timing.n_evaluated > 0
    assert run.total_seconds > 0
    assert run.task_seconds > 0


def test_report_renders(paper_session):
    run = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=1)
    text = run.report()
    assert "Study runner telemetry" in text
    assert "128B/LVT/M1" in text
    assert "total wall time" in text


def test_sweep_report_still_works(paper_session):
    """The runner's sweep is a full SweepResult (tables render)."""
    run = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=1)
    assert "Table 4" in run.sweep.report()


def test_unknown_executor_rejected(paper_session):
    with pytest.raises(ValueError):
        run_study(session=paper_session, capacities=CAPACITIES,
                  workers=2, executor="carrier-pigeon")


@pytest.mark.parametrize("executor,workers", [
    ("serial", 1),
    ("thread", 2),
    ("process", 2),
])
def test_worker_failure_surfaces_task_label(paper_session, executor,
                                            workers):
    """A task raising mid-study must fail the run promptly (no
    deadlock), name the matrix cell that died, and keep the original
    exception as the cause — on every executor."""
    with pytest.raises(StudyTaskError) as excinfo:
        run_study(session=paper_session, capacities=CAPACITIES,
                  workers=workers, executor=executor,
                  space=PoisonedSpace())
    error = excinfo.value
    assert isinstance(error, ReproError)
    assert error.task_label == "256B/LVT/M1"
    assert "256B/LVT/M1" in str(error)
    assert "injected mid-study fault" in str(error)
    assert isinstance(error.__cause__, RuntimeError)


def test_runner_usable_after_failure(paper_session):
    """A failed parallel study shuts its pool down cleanly; the same
    session immediately runs a healthy study afterwards."""
    with pytest.raises(StudyTaskError):
        run_study(session=paper_session, capacities=CAPACITIES,
                  workers=2, executor="thread", space=PoisonedSpace())
    run = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=2, executor="thread")
    assert len(run.sweep.results) == len(study_matrix(CAPACITIES))


def test_engine_parity_through_runner(paper_session):
    vec = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=1, engine="vectorized")
    loop = run_study(session=paper_session, capacities=CAPACITIES,
                     workers=1, engine="loop")
    assert _edp_map(vec.sweep) == _edp_map(loop.sweep)


@pytest.mark.parametrize("executor,workers", [
    ("serial", 1),
    ("thread", 2),
    ("process", 2),
])
def test_fused_engine_policy_batches_cells(paper_session, executor,
                                           workers):
    """The fused engine scores each (flavor, capacity) cell's methods
    in one policy-batched dispatch; the sweep stays bit-identical to
    the per-task vectorized run and the per-task telemetry intact."""
    vec = run_study(session=paper_session, capacities=CAPACITIES,
                    workers=1, engine="vectorized")
    fused = run_study(session=paper_session, capacities=CAPACITIES,
                      workers=workers, executor=executor, engine="fused")
    assert _edp_map(fused.sweep) == _edp_map(vec.sweep)
    tasks = study_matrix(CAPACITIES)
    assert [t.task for t in fused.timings] == list(tasks)
    for key, result in fused.sweep.results.items():
        assert result.design == vec.sweep.results[key].design
        assert result.n_evaluated == vec.sweep.results[key].n_evaluated
    for timing in fused.timings:
        assert timing.seconds > 0
        assert timing.n_evaluated > 0


def test_fused_engine_failure_names_the_unit(paper_session):
    """A fused policy batch that dies names its whole cell — both
    methods rode one dispatch, so the cell is the faulty grain."""
    with pytest.raises(StudyTaskError) as excinfo:
        run_study(session=paper_session, capacities=CAPACITIES,
                  workers=1, engine="fused", space=PoisonedSpace())
    assert excinfo.value.task_label == "256B/LVT/M1+M2"
    assert "injected mid-study fault" in str(excinfo.value)
