"""The calibrated 7nm library: paper device ratios and API behavior."""

import pytest

from repro.devices import (
    VDD_NOMINAL,
    VT_HVT,
    VT_LVT,
    DeviceLibrary,
    FinFET,
)


@pytest.fixture(scope="module")
def library():
    return DeviceLibrary.default_7nm()


def test_nominal_supply_is_450mv(library):
    assert library.vdd == pytest.approx(0.450)


def test_vt_split_ordering():
    assert 0 < VT_LVT < VT_HVT < VDD_NOMINAL


def test_hvt_vt_matches_paper_fit():
    assert VT_HVT == pytest.approx(0.335)


def test_ion_ratio_close_to_two(library):
    lvt = FinFET(library.nfet_lvt)
    hvt = FinFET(library.nfet_hvt)
    ratio = lvt.ion(library.vdd) / hvt.ion(library.vdd)
    assert ratio == pytest.approx(2.0, rel=0.08)


def test_ioff_ratio_close_to_twenty(library):
    lvt = FinFET(library.nfet_lvt)
    hvt = FinFET(library.nfet_hvt)
    ratio = lvt.ioff(library.vdd) / hvt.ioff(library.vdd)
    assert ratio == pytest.approx(20.0, rel=0.10)


def test_onoff_gain_close_to_ten(library):
    lvt = FinFET(library.nfet_lvt)
    hvt = FinFET(library.nfet_hvt)
    gain = hvt.on_off_ratio(library.vdd) / lvt.on_off_ratio(library.vdd)
    assert gain == pytest.approx(10.0, rel=0.15)


def test_pfet_weaker_than_nfet(library):
    nfet = FinFET(library.nfet_lvt)
    pfet = FinFET(library.pfet_lvt)
    assert pfet.ion(library.vdd) < nfet.ion(library.vdd)
    assert pfet.ion(library.vdd) > 0.5 * nfet.ion(library.vdd)


def test_flavor_accessors(library):
    assert library.nfet_params("lvt") is library.nfet_lvt
    assert library.nfet_params("hvt") is library.nfet_hvt
    assert library.pfet_params("lvt") is library.pfet_lvt
    assert library.pfet_params("hvt") is library.pfet_hvt


def test_unknown_flavor_rejected(library):
    with pytest.raises(ValueError):
        library.nfet_params("svt")
    with pytest.raises(ValueError):
        library.pfet("ultra")


def test_device_factories(library):
    dev = library.nfet("hvt", nfin=3)
    assert dev.nfin == 3
    assert dev.params is library.nfet_hvt
    pdev = library.pfet("lvt")
    assert pdev.params.polarity == "p"


def test_polarity_assignment(library):
    assert library.nfet_lvt.polarity == "n"
    assert library.pfet_hvt.polarity == "p"


def test_library_is_frozen(library):
    with pytest.raises(Exception):
        library.vdd = 0.5
