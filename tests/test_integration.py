"""End-to-end integration: device -> cell -> periphery -> array -> opt,
plus the CLI entry point."""

import numpy as np
import pytest

from repro.analysis import optimize_all
from repro.array import ArrayConfig, DesignPoint, SRAMArrayModel
from repro.cli import main as cli_main
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy
from tests.conftest import CACHE_PATH


def test_full_stack_hvt_vs_lvt_at_16kb(paper_session):
    """The paper's flagship data point, from devices to the optimum."""
    sweep = optimize_all(paper_session, capacities=(16384,))
    hvt = sweep.get(16384, "hvt", "M2").metrics
    lvt = sweep.get(16384, "lvt", "M2").metrics
    gain = 1.0 - hvt.edp / lvt.edp
    penalty = hvt.d_array / lvt.d_array - 1.0
    assert 0.65 < gain < 0.85          # paper: 0.78
    assert -0.05 < penalty < 0.15      # paper: 0.08


def test_vectorized_search_equals_scalar_bruteforce(paper_session):
    """Cross-validate the broadcast optimizer against a plain Python
    triple loop on a reduced subspace."""
    model = paper_session.model("hvt")
    constraint = paper_session.constraint("hvt")
    space = DesignSpace(
        v_ssc_values=(0.0, -0.12, -0.24),
        n_pre_max=6, n_wr_max=3,
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    fast = optimizer.optimize(1024 * 8, policy)

    best_edp = np.inf
    best = None
    for n_r in space.row_counts(1024 * 8):
        for v_ssc in space.v_ssc_values:
            if not constraint.satisfied(policy.v_ddc, v_ssc, policy.v_wl):
                continue
            for n_pre in range(1, 7):
                for n_wr in range(1, 4):
                    d = DesignPoint(
                        n_r=n_r, n_c=1024 * 8 // n_r, n_pre=n_pre,
                        n_wr=n_wr, v_ddc=policy.v_ddc,
                        v_ssc=float(v_ssc), v_wl=policy.v_wl,
                    )
                    m = model.evaluate(1024 * 8, d)
                    if m.edp < best_edp:
                        best_edp, best = m.edp, d
    assert fast.metrics.edp == pytest.approx(best_edp)
    assert (fast.design.n_r, fast.design.n_pre, fast.design.n_wr) == (
        best.n_r, best.n_pre, best.n_wr
    )


def test_config_changes_propagate(paper_session):
    """A read-heavy workload shifts the energy blend toward reads."""
    read_heavy = SRAMArrayModel(
        paper_session.chars["hvt"], ArrayConfig(beta=1.0)
    )
    write_heavy = SRAMArrayModel(
        paper_session.chars["hvt"], ArrayConfig(beta=0.0)
    )
    design = DesignPoint(n_r=128, n_c=64, n_pre=8, n_wr=2,
                         v_ddc=0.55, v_ssc=-0.2, v_wl=0.55)
    r = read_heavy.evaluate(8192, design)
    w = write_heavy.evaluate(8192, design)
    assert r.e_sw == pytest.approx(r.e_sw_rd)
    assert w.e_sw == pytest.approx(w.e_sw_wr)


def test_cli_calibration_runs(capsys):
    rc = cli_main(["calibration", "--cache", CACHE_PATH])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Ion ratio" in out


def test_cli_table4_runs(capsys, tmp_path):
    json_path = str(tmp_path / "t4.json")
    rc = cli_main(["table4", "--cache", CACHE_PATH, "--json", json_path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    import os

    assert os.path.exists(json_path)


def test_cli_headline_measured_mode(capsys):
    rc = cli_main(["headline", "--cache", CACHE_PATH,
                   "--voltage-mode", "measured"])
    assert rc == 0
    assert "EDP" in capsys.readouterr().out
