"""Transient analysis: RC analytics, energy bookkeeping, early stop."""

import math

import numpy as np
import pytest

from repro.spice import Circuit, step, transient


def rc_circuit(r=1e4, c=1e-15, v=1.0, t_step=1e-12):
    circuit = Circuit("rc")
    circuit.add_vsource("vs", "a", "0", step(t_step, 0.0, v, 1e-15))
    circuit.add_resistor("r", "a", "b", r)
    circuit.add_capacitor("c", "b", "0", c)
    return circuit


def test_rc_charging_matches_analytic():
    r, c, v = 1e4, 1e-15, 1.0
    tau = r * c  # 10 ps
    result = transient(rc_circuit(r, c, v), 60e-12, 0.05e-12)
    for n_tau in (1.0, 2.0, 3.0):
        t = 1e-12 + n_tau * tau
        expected = v * (1.0 - math.exp(-n_tau))
        assert result.node("b").value_at(t) == pytest.approx(
            expected, abs=0.01
        )


def test_rc_source_energy_split():
    """The source delivers C*V^2 total: half stored, half dissipated."""
    r, c, v = 1e4, 1e-15, 1.0
    result = transient(rc_circuit(r, c, v), 150e-12, 0.05e-12)
    delivered = result.delivered_energy("vs")
    assert delivered == pytest.approx(c * v * v, rel=0.02)


def test_initial_operating_point_respected():
    # Before the step fires, the capacitor node holds its DC value (0).
    result = transient(rc_circuit(t_step=5e-12), 8e-12, 0.05e-12)
    assert abs(result.node("b").value_at(2e-12)) < 1e-9


def test_transient_argument_validation():
    with pytest.raises(ValueError):
        transient(rc_circuit(), -1.0, 1e-12)
    with pytest.raises(ValueError):
        transient(rc_circuit(), 1e-12, 0.0)


def test_stop_condition_ends_run_early():
    result = transient(
        rc_circuit(), 100e-12, 0.05e-12,
        stop_condition=lambda t, v: v["b"] > 0.5,
        stop_margin=2,
    )
    assert result.times[-1] < 50e-12
    assert result.node("b").final > 0.45


def test_record_every_subsamples():
    dense = transient(rc_circuit(), 20e-12, 0.05e-12)
    sparse = transient(rc_circuit(), 20e-12, 0.05e-12, record_every=5)
    assert len(sparse.times) < len(dense.times)
    # The final point is always kept.
    assert sparse.times[-1] == pytest.approx(dense.times[-1])


def test_two_capacitor_charge_sharing():
    """A charged cap sharing onto an equal uncharged cap halves the
    voltage (charge conservation through a resistor)."""
    circuit = Circuit("share")
    circuit.add_vsource("vdrv", "a", "0", step(1e-12, 1.0, 0.0, 1e-15))
    circuit.add_resistor("riso", "a", "b", 1e6)  # weak tie to the driver
    circuit.add_resistor("rshare", "b", "c", 1e3)
    circuit.add_capacitor("c1", "b", "0", 1e-15)
    circuit.add_capacitor("c2", "c", "0", 1e-15)
    # At t=0 the DC solution puts b = c = 1.0 (driver high)...
    result = transient(circuit, 4e-12, 0.02e-12)
    # ... then the driver drops and both caps discharge toward 0 via the
    # 1 MOhm tie with tau = 2 fF * 1 MOhm = 2 ns >> runtime, while the
    # 1 kOhm share resistor keeps them equal.
    b = result.node("b").final
    c = result.node("c").final
    assert b == pytest.approx(c, abs=0.02)
    assert b > 0.95  # barely discharged within 4 ps


def test_branch_current_waveform_available():
    result = transient(rc_circuit(), 20e-12, 0.1e-12)
    current = result.branch_current("vs")
    assert len(current.values) == len(result.times)
    # Peak charging current ~ V/R right after the step.
    assert float(np.max(np.abs(current.values))) == pytest.approx(
        1.0 / 1e4, rel=0.2
    )


def test_trapezoidal_more_accurate_at_coarse_steps():
    """Second-order trap beats first-order BE on a coarse-step RC."""
    import math

    r, c, v = 1e4, 1e-15, 1.0
    tau = r * c
    dt = tau / 4.0  # deliberately coarse
    t_probe = 1e-12 + 2.0 * tau
    exact = v * (1.0 - math.exp(-2.0))
    be = transient(rc_circuit(r, c, v), 40e-12, dt, method="be")
    trap = transient(rc_circuit(r, c, v), 40e-12, dt, method="trap")
    err_be = abs(be.node("b").value_at(t_probe) - exact)
    err_trap = abs(trap.node("b").value_at(t_probe) - exact)
    assert err_trap < 0.5 * err_be


def test_trapezoidal_matches_be_at_fine_steps():
    be = transient(rc_circuit(), 30e-12, 0.02e-12, method="be")
    trap = transient(rc_circuit(), 30e-12, 0.02e-12, method="trap")
    assert trap.node("b").final == pytest.approx(
        be.node("b").final, abs=1e-3
    )


def test_trapezoidal_energy_accuracy():
    """At a coarse step, trap's delivered source energy stays closer to
    the exact C*V^2 than BE's."""
    r, c, v = 1e4, 1e-15, 1.0
    dt = r * c / 4.0
    be = transient(rc_circuit(r, c, v), 200e-12, dt, method="be")
    trap = transient(rc_circuit(r, c, v), 200e-12, dt, method="trap")
    exact = c * v * v
    err_be = abs(be.delivered_energy("vs") - exact)
    err_trap = abs(trap.delivered_energy("vs") - exact)
    assert err_trap <= err_be + 1e-18


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        transient(rc_circuit(), 1e-12, 1e-13, method="gear")
