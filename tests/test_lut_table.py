"""Interpolating look-up tables: exactness, bounds, bilinearity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LookupError_
from repro.lut import LUT1D, LUT2D, tabulate_1d, tabulate_2d


def test_lut1d_exact_at_knots():
    lut = LUT1D([0.0, 1.0, 2.0], [5.0, 7.0, 3.0])
    assert lut(0.0) == 5.0
    assert lut(1.0) == 7.0
    assert lut(2.0) == 3.0


def test_lut1d_linear_between_knots():
    lut = LUT1D([0.0, 2.0], [0.0, 10.0])
    assert lut(0.5) == pytest.approx(2.5)


def test_lut1d_rejects_bad_shapes():
    with pytest.raises(ValueError):
        LUT1D([0.0], [1.0])
    with pytest.raises(ValueError):
        LUT1D([0.0, 1.0], [1.0])
    with pytest.raises(ValueError):
        LUT1D([0.0, 0.0], [1.0, 2.0])  # non-increasing


def test_lut1d_out_of_range_raises_with_name():
    lut = LUT1D([0.0, 1.0], [0.0, 1.0], name="i_read")
    with pytest.raises(LookupError_) as err:
        lut(1.5)
    assert "i_read" in str(err.value)


def test_lut1d_clamp_mode():
    lut = LUT1D([0.0, 1.0], [0.0, 1.0], clamp=True)
    assert lut(2.0) == 1.0
    assert lut(-1.0) == 0.0


def test_lut1d_vector_query():
    lut = LUT1D([0.0, 1.0], [0.0, 2.0])
    out = lut(np.array([0.0, 0.5, 1.0]))
    assert np.allclose(out, [0.0, 1.0, 2.0])


def test_lut1d_map():
    lut = LUT1D([0.0, 1.0], [1.0, 2.0])
    doubled = lut.map(lambda y: 2 * y, name="doubled")
    assert doubled(1.0) == 4.0
    assert doubled.name == "doubled"


def test_lut1d_x_range():
    assert LUT1D([0.0, 3.0], [0, 0]).x_range == (0.0, 3.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=-10, max_value=10), min_size=3,
             max_size=8, unique=True),
    st.floats(min_value=-5, max_value=5),
    st.floats(min_value=-5, max_value=5),
)
def test_lut1d_reproduces_affine_functions(xs, slope, intercept):
    """Property: linear interpolation is exact for affine data."""
    xs = sorted(xs)
    ys = [slope * x + intercept for x in xs]
    lut = LUT1D(xs, ys)
    for frac in (0.25, 0.5, 0.75):
        x = xs[0] + frac * (xs[-1] - xs[0])
        assert lut(x) == pytest.approx(slope * x + intercept,
                                       rel=1e-9, abs=1e-9)


def test_lut2d_exact_at_grid():
    zs = np.array([[1.0, 2.0], [3.0, 4.0]])
    lut = LUT2D([0.0, 1.0], [0.0, 1.0], zs)
    assert lut(0.0, 0.0) == 1.0
    assert lut(1.0, 1.0) == 4.0


def test_lut2d_bilinear_center():
    zs = np.array([[0.0, 0.0], [0.0, 4.0]])
    lut = LUT2D([0.0, 1.0], [0.0, 1.0], zs)
    assert lut(0.5, 0.5) == pytest.approx(1.0)


def test_lut2d_shape_validation():
    with pytest.raises(ValueError):
        LUT2D([0.0, 1.0], [0.0, 1.0], np.zeros((3, 2)))
    with pytest.raises(ValueError):
        LUT2D([0.0], [0.0, 1.0], np.zeros((1, 2)))
    with pytest.raises(ValueError):
        LUT2D([1.0, 0.0], [0.0, 1.0], np.zeros((2, 2)))


def test_lut2d_bounds_and_clamp():
    zs = np.array([[0.0, 1.0], [2.0, 3.0]])
    strict = LUT2D([0.0, 1.0], [0.0, 1.0], zs, name="grid")
    with pytest.raises(LookupError_):
        strict(2.0, 0.5)
    clamped = LUT2D([0.0, 1.0], [0.0, 1.0], zs, clamp=True)
    assert clamped(2.0, 2.0) == 3.0


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=-3, max_value=3),
    st.floats(min_value=-3, max_value=3),
    st.floats(min_value=-3, max_value=3),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_lut2d_reproduces_bilinear_functions(a, b, c, qx, qy):
    """Property: bilinear interpolation is exact for z = a + b*x + c*y."""
    xs = [0.0, 0.4, 1.0]
    ys = [0.0, 0.7, 1.0]
    zs = np.array([[a + b * x + c * y for y in ys] for x in xs])
    lut = LUT2D(xs, ys, zs)
    expected = a + b * qx + c * qy
    assert lut(qx, qy) == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_tabulate_helpers():
    lut1 = tabulate_1d(lambda x: x * x, [0.0, 1.0, 2.0])
    assert lut1(2.0) == 4.0
    lut2 = tabulate_2d(lambda x, y: x + y, [0.0, 1.0], [0.0, 2.0])
    assert lut2(1.0, 2.0) == 3.0


def test_lut2d_ranges():
    zs = np.zeros((2, 3))
    lut = LUT2D([0.0, 1.0], [-1.0, 0.0, 2.0], zs)
    assert lut.x_range == (0.0, 1.0)
    assert lut.y_range == (-1.0, 2.0)


def test_lut2d_batch_matches_scalar_bitwise():
    """The broadcast path must reproduce the scalar path bit for bit
    (the vectorized search relies on this for loop-engine equivalence)."""
    rng = np.random.default_rng(7)
    xs = np.sort(rng.uniform(0.0, 1.0, 6))
    ys = np.sort(rng.uniform(-1.0, 0.0, 5))
    zs = rng.uniform(0.0, 1e-4, (6, 5))
    lut = LUT2D(xs, ys, zs)
    queries_y = rng.uniform(ys[0], ys[-1], 12)
    x = float(rng.uniform(xs[0], xs[-1]))
    batch = lut(x, queries_y)
    assert batch.shape == queries_y.shape
    for k, y in enumerate(queries_y):
        assert batch[k] == lut(x, float(y))


def test_lut2d_batch_broadcast_shapes():
    zs = np.array([[0.0, 1.0], [2.0, 3.0]])
    lut = LUT2D([0.0, 1.0], [0.0, 1.0], zs)
    y_axis = np.array([0.0, 0.5, 1.0]).reshape(-1, 1, 1)
    out = lut(0.5, y_axis)
    assert out.shape == (3, 1, 1)


def test_lut2d_batch_bounds_raise():
    zs = np.array([[0.0, 1.0], [2.0, 3.0]])
    strict = LUT2D([0.0, 1.0], [0.0, 1.0], zs, name="grid")
    with pytest.raises(LookupError_):
        strict(0.5, np.array([0.0, 2.0]))
    clamped = LUT2D([0.0, 1.0], [0.0, 1.0], zs, clamp=True)
    out = clamped(0.5, np.array([-1.0, 2.0]))
    assert out[0] == clamped(0.5, 0.0)
    assert out[1] == clamped(0.5, 1.0)
