"""Lane-batched Newton/transient engine vs the scalar solvers.

Every batched analysis must equal per-lane scalar runs *bitwise*; these
tests drive both paths over the same circuits, including array-valued
source levels and per-lane early-stop bookkeeping.
"""

import numpy as np
import pytest

from repro.spice import Circuit, operating_point, step, transient
from repro.spice.batch import (
    lane_circuit,
    operating_point_batch,
    transient_batch,
)

LEVELS = np.asarray([0.3, 0.6, 0.9])


def divider_circuit(v_levels):
    circuit = Circuit("divider")
    circuit.add_vsource("vs", "a", "0", v_levels)
    circuit.add_resistor("r1", "a", "m", 1e4)
    circuit.add_resistor("r2", "m", "0", 1e4)
    return circuit


def rc_circuit(v_levels, t_step=1e-12):
    circuit = Circuit("rc")
    circuit.add_vsource("vs", "a", "0", step(t_step, 0.0, v_levels, 1e-15))
    circuit.add_resistor("r", "a", "b", 1e4)
    circuit.add_capacitor("c", "b", "0", 1e-15)
    return circuit


def test_lane_circuit_substitutes_and_restores():
    circuit = divider_circuit(LEVELS)
    source = circuit.vsources[0]
    with lane_circuit(circuit, 1):
        assert source.value == 0.6
    assert np.array_equal(source.value, LEVELS)

    stimulus = rc_circuit(LEVELS)
    source = stimulus.vsources[0]
    original = source.value
    with lane_circuit(stimulus, 2):
        assert source.value(5e-12) == 0.9
    assert source.value is original


def test_operating_point_batch_matches_scalar_lanes():
    circuit = divider_circuit(LEVELS)
    x = operating_point_batch(circuit, len(LEVELS))
    for k in range(len(LEVELS)):
        with lane_circuit(circuit, k):
            solution = operating_point(circuit)
        assert np.array_equal(x[:, k], solution.x)


def test_transient_batch_matches_scalar_lanes():
    lanes = len(LEVELS)
    results = transient_batch(rc_circuit(LEVELS), lanes, 20e-12, 0.1e-12)
    for k in range(lanes):
        scalar = transient(rc_circuit(float(LEVELS[k])), 20e-12, 0.1e-12)
        batched = results[k]
        assert np.array_equal(batched.times, scalar.times)
        for node in ("a", "b"):
            assert np.array_equal(
                batched.node(node).values, scalar.node(node).values
            )
        assert np.array_equal(
            batched._source_voltages["vs"], scalar._source_voltages["vs"]
        )
        assert batched.delivered_energy("vs") == scalar.delivered_energy("vs")


def test_transient_batch_per_lane_early_stop():
    """Each lane stops at its own threshold crossing with the scalar
    margin bookkeeping: same point counts, same final values."""
    lanes = len(LEVELS)
    results = transient_batch(
        rc_circuit(LEVELS), lanes, 100e-12, 0.1e-12,
        stop_condition=lambda _t, v: v["b"] > 0.25,
        stop_margin=3,
    )
    for k in range(lanes):
        scalar = transient(
            rc_circuit(float(LEVELS[k])), 100e-12, 0.1e-12,
            stop_condition=lambda _t, v: v["b"] > 0.25,
            stop_margin=3,
        )
        assert len(results[k].times) == len(scalar.times)
        assert np.array_equal(
            results[k].node("b").values, scalar.node("b").values
        )
    # The fastest-charging lane must actually have stopped early.
    assert results[2].times[-1] < 50e-12
    # A lane that never crosses runs to t_stop.
    never = transient_batch(
        rc_circuit(LEVELS), lanes, 20e-12, 0.1e-12,
        stop_condition=lambda _t, v: v["b"] > 2.0,
        stop_margin=3,
    )
    assert never[0].times[-1] == pytest.approx(20e-12)


def test_transient_batch_argument_validation():
    with pytest.raises(ValueError):
        transient_batch(rc_circuit(LEVELS), 3, -1.0, 1e-12)
    with pytest.raises(ValueError):
        transient_batch(rc_circuit(LEVELS), 3, 1e-12, 0.0)
