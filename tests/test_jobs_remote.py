"""Remote job claiming over HTTP: lease tokens, races, failure
semantics.  A real server (jobs enabled, zero in-process workers) and
real :class:`RemoteJobQueue` clients."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import perf
from repro.errors import JobError
from repro.jobs import JobQueue
from repro.jobs.remote import (
    RemoteJobQueue,
    make_lease_token,
    parse_lease_token,
)
from repro.jobs.worker import (
    SessionProvider,
    execute_study_job,
    run_worker,
)
from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.store import ExperimentStore

from .conftest import CACHE_PATH

SPEC = {"capacities": [128], "flavors": ["lvt"], "methods": ["M1"]}


@pytest.fixture()
def service(paper_session, tmp_path):
    db_path = str(tmp_path / "jobs.db")
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           cache_path=CACHE_PATH, jobs_path=db_path,
                           job_workers=0)
    with ServerThread(config, session=paper_session) as running:
        running.db_path = db_path
        yield running


@pytest.fixture()
def remote(service):
    with RemoteJobQueue("http://127.0.0.1:%d" % service.port) as queue:
        yield queue


def counter_value(name):
    return perf.get_registry().snapshot()["counters"].get(name, 0)


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# Lease tokens
# ---------------------------------------------------------------------------

def test_lease_token_round_trip():
    token = make_lease_token("job-00ff", 7)
    assert parse_lease_token(token) == ("job-00ff", 7)


@pytest.mark.parametrize("bogus", [None, "", "lt", "lt.x.job", "7.job",
                                   "lt.7.", 42])
def test_malformed_lease_tokens_raise(bogus):
    with pytest.raises(JobError):
        parse_lease_token(bogus)


# ---------------------------------------------------------------------------
# Claim / heartbeat / complete lifecycle over HTTP
# ---------------------------------------------------------------------------

def test_remote_claim_lifecycle(remote):
    job_id = remote.submit("study", SPEC)
    job = remote.claim("remote-w1", lease_seconds=30.0)
    assert job is not None and job.id == job_id
    assert job.state == "running" and job.attempts == 1
    # The claim remembered its lease token and correlation id.
    assert remote.request_id_for(job_id).startswith("work-")
    assert remote.heartbeat(job_id, "remote-w1", 30.0,
                            progress={"completed": 1, "total": 1})
    assert remote.complete(job_id, "remote-w1", result_key=None)
    assert remote.get(job_id).state == "done"
    assert remote.counts()["done"] >= 1
    # The claim bookkeeping is dropped once the job is finished.
    assert remote.request_id_for(job_id) is None


def test_remote_claim_returns_none_when_idle(remote):
    assert remote.claim("remote-idle") is None


def test_remote_fail_retries_then_parks(remote):
    job_id = remote.submit("study", SPEC, max_attempts=2)
    remote.claim("remote-w1", lease_seconds=30.0)
    assert remote.fail(job_id, "remote-w1", "boom") == "queued"
    remote.claim("remote-w1", lease_seconds=30.0)
    assert remote.fail(job_id, "remote-w1", "boom again") == "failed"
    assert remote.get(job_id).error == "boom again"


# ---------------------------------------------------------------------------
# Stale leases: the fencing contract
# ---------------------------------------------------------------------------

def test_stale_lease_complete_rejected_and_job_reclaimed(service):
    url = "http://127.0.0.1:%d" % service.port
    with RemoteJobQueue(url) as stale, RemoteJobQueue(url) as fresh:
        job_id = stale.submit("study", SPEC)
        stale_job = stale.claim("worker-stale", lease_seconds=0.3)
        assert stale_job is not None
        time.sleep(0.5)        # lease expires server-side

        # Re-claim bumps the attempt counter; the stale claimant's
        # token now fences out every verb — even from the same worker
        # identity.
        fresh_job = fresh.claim("worker-fresh", lease_seconds=30.0)
        assert fresh_job is not None and fresh_job.id == job_id
        assert fresh_job.attempts == stale_job.attempts + 1

        before = counter_value("jobs.stale_complete_rejected")
        assert stale.complete(job_id, "worker-stale") is False
        assert counter_value("jobs.stale_complete_rejected") == \
            before + 1
        assert stale.heartbeat(job_id, "worker-stale", 30.0) is False
        assert stale.fail(job_id, "worker-stale", "late") is None

        # The live claimant is unaffected by the stale attempts.
        assert fresh.heartbeat(job_id, "worker-fresh", 30.0)
        assert fresh.complete(job_id, "worker-fresh")
        assert fresh.get(job_id).state == "done"


def test_stale_lease_rejected_for_same_worker_identity(service):
    """Attempt fencing must hold even when the SAME worker re-claims
    its own expired job: the old claim handle's token is dead."""
    url = "http://127.0.0.1:%d" % service.port
    with RemoteJobQueue(url) as old, RemoteJobQueue(url) as new:
        job_id = old.submit("study", SPEC)
        assert old.claim("worker-x", lease_seconds=0.3) is not None
        time.sleep(0.5)
        assert new.claim("worker-x", lease_seconds=30.0) is not None
        assert old.complete(job_id, "worker-x") is False
        assert new.complete(job_id, "worker-x") is True


# ---------------------------------------------------------------------------
# Concurrent claims: never double-claim
# ---------------------------------------------------------------------------

def test_concurrent_remote_claims_never_double_claim(service):
    url = "http://127.0.0.1:%d" % service.port
    n_jobs = 8
    with RemoteJobQueue(url) as producer:
        submitted = {producer.submit("study", SPEC, priority=i)
                     for i in range(n_jobs)}

    claimed = {"a": [], "b": []}
    barrier = threading.Barrier(2)

    def drain(name):
        with RemoteJobQueue(url) as queue:
            barrier.wait()
            while True:
                job = queue.claim("racer-%s" % name, lease_seconds=30.0)
                if job is None:
                    break
                claimed[name].append(job.id)
                queue.complete(job.id, "racer-%s" % name)

    threads = [threading.Thread(target=drain, args=(name,))
               for name in claimed]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)

    overlap = set(claimed["a"]) & set(claimed["b"])
    assert overlap == set()
    assert set(claimed["a"]) | set(claimed["b"]) == submitted
    assert len(claimed["a"]) + len(claimed["b"]) == n_jobs


# ---------------------------------------------------------------------------
# Network failure semantics
# ---------------------------------------------------------------------------

def test_unreachable_queue_maps_to_crash_semantics():
    queue = RemoteJobQueue("http://127.0.0.1:%d" % free_port(),
                           timeout=1.0, connect_timeout=0.5)
    assert queue.claim("worker-lost") is None
    assert queue.heartbeat("job-x", "worker-lost") is False
    assert queue.complete("job-x", "worker-lost") is False
    assert queue.fail("job-x", "worker-lost", "err") is None
    # Producer-side calls are not crash-tolerant — they surface the
    # transport failure to the submitter instead of swallowing it.
    with pytest.raises(OSError):
        queue.submit("study", SPEC)
    queue.close()


# ---------------------------------------------------------------------------
# The worker loop over a remote queue
# ---------------------------------------------------------------------------

def test_run_worker_drains_remote_queue(service, paper_session,
                                        tmp_path):
    url = "http://127.0.0.1:%d" % service.port
    provider = SessionProvider(default_cache_path=CACHE_PATH)
    provider.seed(paper_session, cache_path=CACHE_PATH)
    with RemoteJobQueue(url) as remote:
        job_id = remote.submit("study", SPEC)
        store = ExperimentStore(str(tmp_path / "worker-store.db"))
        stats = run_worker(queue=remote, store=store,
                           worker_id="remote-loop", once=True,
                           sessions=provider, poll_interval=0.05)
        assert stats.jobs_done == 1
        assert stats.outcomes == [(job_id, "done")]
        job = remote.get(job_id)
        assert job.state == "done"
        # The sweep record landed in the worker's own store.
        assert store.get(job.result_key) is not None


def test_remote_request_id_threads_into_the_store(service,
                                                  paper_session,
                                                  tmp_path):
    """The claim's correlation id must reach the store's sync hook —
    that is how one sweep's id survives host hops."""
    url = "http://127.0.0.1:%d" % service.port
    provider = SessionProvider(default_cache_path=CACHE_PATH)
    provider.seed(paper_session, cache_path=CACHE_PATH)

    class RecordingStore:
        def __init__(self, inner):
            self.inner = inner
            self.request_ids = []

        def set_request_id(self, request_id):
            self.request_ids.append(request_id)

        def __getattr__(self, name):
            return getattr(self.inner, name)

    with RemoteJobQueue(url) as remote:
        remote.submit("study", SPEC)
        job = remote.claim("rid-worker", lease_seconds=30.0)
        claim_rid = remote.request_id_for(job.id)
        assert claim_rid.startswith("work-")
        store = RecordingStore(
            ExperimentStore(str(tmp_path / "rid-store.db")))
        outcome = execute_study_job(job, remote, store, "rid-worker",
                                    provider, lease_seconds=30.0)
        assert outcome == "done"
        assert store.request_ids == [claim_rid]
