"""Shared fixtures for the test suite.

Heavy characterization state is session-scoped and backed by the repo's
characterization cache, so the suite runs fast after the first cold run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import Session
from repro.cell import SRAM6TCell
from repro.devices import DeviceLibrary
from repro.lut import CharacterizationCache
from repro.periphery import characterize

CACHE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", ".repro_cache.json"
)


@pytest.fixture(scope="session")
def library():
    return DeviceLibrary.default_7nm()


@pytest.fixture(scope="session")
def lvt_cell(library):
    return SRAM6TCell.from_library(library, "lvt")


@pytest.fixture(scope="session")
def hvt_cell(library):
    return SRAM6TCell.from_library(library, "hvt")


@pytest.fixture(scope="session")
def char_cache():
    return CharacterizationCache(CACHE_PATH)


@pytest.fixture(scope="session")
def hvt_char(library, char_cache):
    return characterize(library, "hvt", cache=char_cache)


@pytest.fixture(scope="session")
def lvt_char(library, char_cache):
    return characterize(library, "lvt", cache=char_cache)


@pytest.fixture(scope="session")
def paper_session():
    return Session.create(cache_path=CACHE_PATH, voltage_mode="paper")
