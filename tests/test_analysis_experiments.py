"""Experiment drivers (light versions over the shared session)."""

import pytest

from repro.analysis import (
    PAPER_LEVELS,
    Session,
    calibration_checkpoints,
    compute_headline,
    fig2_cell_vdd_scaling,
    optimize_all,
)
from repro.analysis.paper_data import PAPER_TABLE4, table4_comparison_rows


def test_session_paper_levels(paper_session):
    levels = paper_session.yield_levels("hvt")
    assert levels == PAPER_LEVELS["hvt"]
    assert paper_session.constraint("hvt").trust_fixed_rails


def test_session_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Session.create(cache_path=None, voltage_mode="wrong")


def test_fig2_small_sweep(paper_session):
    result = fig2_cell_vdd_scaling(paper_session,
                                   vdd_values=[0.3, 0.45])
    assert result.leakage["lvt"][-1] == pytest.approx(1.692e-9, rel=0.03)
    assert "Figure 2" in result.report()


def test_calibration_checkpoints(paper_session):
    result = calibration_checkpoints(paper_session)
    assert result.ion_ratio == pytest.approx(2.0, rel=0.1)
    a, b, _vt = result.read_fit
    assert a == pytest.approx(1.3, rel=0.15)
    assert b == pytest.approx(9.5e-5, rel=0.5)
    assert "calibration" in result.report().lower()


@pytest.fixture(scope="module")
def small_sweep(paper_session):
    return optimize_all(paper_session, capacities=(1024, 4096))


def test_optimize_all_structure(small_sweep):
    assert len(small_sweep.results) == 2 * 2 * 2
    result = small_sweep.get(4096, "hvt", "M2")
    assert result.capacity_bytes == 4096
    assert result.label == "6T-HVT-M2"


def test_sweep_series_accessor(small_sweep):
    series = small_sweep.series("edp")
    assert set(series) == {1024, 4096}
    assert series[4096]["6T-HVT-M2"] < series[4096]["6T-LVT-M2"]


def test_sweep_report_text(small_sweep):
    text = small_sweep.report()
    assert "6T-HVT-M2" in text
    assert "V_SSC" in text


def test_table4_comparison_requires_full_sweep(paper_session):
    sweep = optimize_all(paper_session)
    rows = table4_comparison_rows(sweep)
    assert len(rows) == len(PAPER_TABLE4)
    # A substantial share of organizations matches the paper's row
    # counts exactly (the EDP landscape is flat near the optimum, so
    # neighbouring organizations trade places easily).
    matches = sum(1 for r in rows if r["org_match"])
    assert matches >= 8


def test_headline_from_full_sweep(paper_session):
    sweep = optimize_all(paper_session)
    stats = compute_headline(sweep)
    assert 0.4 < stats.avg_edp_gain_large < 0.7
    assert stats.gain_16kb > 0.65
    assert "Headline" in stats.report()
