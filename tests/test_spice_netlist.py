"""Circuit construction: nodes, elements, validation."""

import pytest

from repro.devices import DeviceLibrary, FinFET
from repro.errors import NetlistError
from repro.spice import Circuit
from repro.spice.elements import GROUND_INDEX

LIB = DeviceLibrary.default_7nm()


def test_ground_aliases_map_to_ground_index():
    c = Circuit()
    for name in ("0", "gnd", "GND"):
        assert c.node(name) == GROUND_INDEX
    assert c.n_nodes == 0


def test_nodes_created_on_first_use():
    c = Circuit()
    assert c.node("a") == 0
    assert c.node("b") == 1
    assert c.node("a") == 0
    assert c.node_names == ("a", "b")


def test_index_of_unknown_node_raises():
    c = Circuit()
    c.node("a")
    with pytest.raises(NetlistError):
        c.index_of("zzz")


def test_duplicate_element_names_rejected():
    c = Circuit()
    c.add_resistor("r1", "a", "0", 100.0)
    with pytest.raises(NetlistError):
        c.add_resistor("r1", "a", "0", 200.0)


def test_nonpositive_resistance_rejected():
    c = Circuit()
    with pytest.raises(NetlistError):
        c.add_resistor("r", "a", "0", 0.0)


def test_nonpositive_capacitance_rejected():
    c = Circuit()
    with pytest.raises(NetlistError):
        c.add_capacitor("c", "a", "0", -1e-15)


def test_unknowns_count_nodes_plus_sources():
    c = Circuit()
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "b", 100.0)
    c.add_resistor("r2", "b", "0", 100.0)
    assert c.n_unknowns == 2 + 1


def test_compile_assigns_branch_indices():
    c = Circuit()
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "0", 100.0)
    c.compile()
    assert c.element("v1").branch_index == 1
    assert c.compiled


def test_compile_empty_circuit_rejected():
    with pytest.raises(NetlistError):
        Circuit().compile()


def test_floating_single_connection_node_rejected():
    c = Circuit()
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "dangling", 100.0)
    with pytest.raises(NetlistError):
        c.compile()


def test_source_driven_single_connection_node_allowed():
    c = Circuit()
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "0", 100.0)
    c.compile()  # "a" has two touches; fine


def test_unconnected_declared_node_rejected():
    c = Circuit()
    c.node("orphan")
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_resistor("r1", "a", "0", 100.0)
    with pytest.raises(NetlistError):
        c.compile()


def test_element_lookup():
    c = Circuit()
    c.add_resistor("r1", "a", "0", 100.0)
    assert c.element("r1").resistance == 100.0
    with pytest.raises(NetlistError):
        c.element("nope")


def test_add_fet_requires_device():
    c = Circuit()
    with pytest.raises(NetlistError):
        c.add_fet("m1", "not a device", "g", "d", "s")
    c.add_fet("m2", FinFET(LIB.nfet_lvt), "g", "d", "s")
    assert len(c.elements) == 1


def test_repr_contains_counts():
    c = Circuit("mycircuit")
    c.add_resistor("r1", "a", "0", 1.0)
    text = repr(c)
    assert "mycircuit" in text
    assert "1 elements" in text
