"""Shared-memory session arena: publish/attach roundtrip and lifecycle.

The arena lets the study-runner parent characterize once and hand every
process worker a zero-copy view of the LUT grids plus the warmed margin
memos.  These tests pin the contract: an attached session is
bit-identical to the publisher's, the numpy views really alias the
segment (read-only, never copied), lifecycle operations are idempotent,
malformed or missing segments raise :class:`ArenaError`, and a worker
dying without cleanup does not leak or unlink the segment.
"""

import os
import struct
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.analysis.runner import run_study
from repro.errors import ArenaError
from repro.jobs.worker import SessionProvider
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy
from repro.shm import ARENA_VERSION, MAGIC, SessionArena

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _optimize(session, flavor, method, capacity_bytes, engine="fused"):
    optimizer = ExhaustiveOptimizer(
        session.model(flavor), DesignSpace(), session.constraint(flavor)
    )
    policy = make_policy(method, session.yield_levels(flavor))
    return optimizer.optimize(capacity_bytes * 8, policy, engine=engine)


def test_roundtrip_is_bit_identical_and_zero_copy(paper_session):
    with SessionArena.publish(paper_session) as arena:
        attached = SessionArena.attach(arena.name)
        try:
            session = attached.to_session()
            assert session.voltage_mode == paper_session.voltage_mode
            assert sorted(attached.flavors) == sorted(paper_session.chars)

            # Zero copy: the LUT axes are read-only views over the
            # segment, not writeable private copies.
            xs = session.chars["hvt"].i_wl.xs
            assert isinstance(xs, np.ndarray)
            assert not xs.flags.writeable
            assert xs.base is not None
            np.testing.assert_array_equal(
                xs, np.asarray(paper_session.chars["hvt"].i_wl.xs)
            )

            # A search through the attached session lands on exactly the
            # same design and metrics as the publisher's session.
            for flavor, method, capacity in (
                ("hvt", "M2", 16384),
                ("lvt", "M1", 128),
            ):
                mine = _optimize(paper_session, flavor, method, capacity)
                theirs = _optimize(session, flavor, method, capacity)
                assert mine.design == theirs.design
                assert mine.metrics.edp == theirs.metrics.edp
                assert mine.margins == theirs.margins
                assert mine.n_evaluated == theirs.n_evaluated
        finally:
            attached.close()


def test_margin_memos_roundtrip(paper_session):
    # Warm the publisher's memo so there is real rsnm content to ship.
    for flavor in ("lvt", "hvt"):
        _optimize(paper_session, flavor, "M2", 1024)
    memos = {
        flavor: constraint.export_margin_memo()
        for flavor, constraint in paper_session.constraints.items()
    }
    with SessionArena.publish(paper_session, margin_memos=memos) as arena:
        attached = SessionArena.attach(arena.name)
        try:
            assert attached.margin_memos() == memos
        finally:
            attached.close()


def test_close_and_dispose_are_idempotent(paper_session):
    arena = SessionArena.publish(paper_session)
    name = arena.name
    arena.dispose()
    arena.dispose()
    arena.close()
    with pytest.raises(ArenaError):
        arena.to_session()
    with pytest.raises(ArenaError):
        SessionArena.attach(name)


def test_attach_missing_segment_raises():
    with pytest.raises(ArenaError, match="no session arena"):
        SessionArena.attach("repro_arena_does_not_exist")


def _raw_segment(payload):
    shm = shared_memory.SharedMemory(create=True, size=max(len(payload), 1))
    shm.buf[: len(payload)] = payload
    return shm


def test_attach_bad_magic_raises():
    shm = _raw_segment(b"\0" * 64)
    try:
        with pytest.raises(ArenaError, match="not a repro session arena"):
            SessionArena.attach(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_attach_version_mismatch_raises():
    header = b"{}"
    payload = struct.pack("<8sII", MAGIC, ARENA_VERSION + 1, len(header))
    shm = _raw_segment(payload + header)
    try:
        with pytest.raises(ArenaError, match="version"):
            SessionArena.attach(shm.name)
    finally:
        shm.close()
        shm.unlink()


def test_worker_crash_leaves_segment_then_owner_unlinks(paper_session):
    arena = SessionArena.publish(paper_session)
    code = (
        "import os\n"
        "from repro.shm import SessionArena\n"
        "arena = SessionArena.attach(%r)\n"
        "assert arena.voltage_mode == %r\n"
        "os._exit(0)\n"  # die without close() — simulated crash
        % (arena.name, paper_session.voltage_mode)
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stderr.strip() == ""  # no resource-tracker noise

    # The crash must not have unlinked the owner's segment.
    survivor = SessionArena.attach(arena.name)
    survivor.close()
    arena.dispose()
    with pytest.raises(ArenaError):
        SessionArena.attach(arena.name)


def test_session_provider_uses_arena(paper_session):
    with SessionArena.publish(paper_session) as arena:
        provider = SessionProvider(arena_name=arena.name)
        session = provider.for_spec({"voltage_mode":
                                     paper_session.voltage_mode})
        assert not session.chars["hvt"].i_wl.xs.flags.writeable
        # Memoized: a second request reuses the attached session.
        assert provider.for_spec(
            {"voltage_mode": paper_session.voltage_mode}) is session


def test_session_provider_voltage_mismatch_falls_back(paper_session):
    with SessionArena.publish(paper_session) as arena:
        # The warm repo cache makes the fallback create() cheap.
        cache = paper_session.cache.path
        provider = SessionProvider(default_cache_path=cache,
                                   arena_name=arena.name)
        session = provider.for_spec({"voltage_mode": "measured"})
        assert session.voltage_mode == "measured"
        assert session.chars["hvt"].i_wl.xs.flags.writeable


def test_process_study_through_arena_matches_serial(paper_session):
    kwargs = dict(session=paper_session, capacities=(128, 1024),
                  engine="fused")
    serial = run_study(workers=1, **kwargs)
    parallel = run_study(executor="process", workers=2, **kwargs)
    assert parallel.fallback_reason is None
    assert parallel.executor == "process"
    for key, result in parallel.sweep.results.items():
        reference = serial.sweep.results[key]
        assert result.design == reference.design
        assert result.metrics.edp == reference.metrics.edp
        assert result.n_evaluated == reference.n_evaluated
