"""Unit-gate characterization (one real inverter run + model algebra)."""

import pytest

from repro.periphery import GateCharacterization, characterize_inverter


@pytest.fixture(scope="module")
def inverter(library):
    return characterize_inverter(library)


def test_inverter_delay_model_fields(inverter):
    assert inverter.d0 >= 0.0
    assert inverter.drive_resistance > 0.0
    # A single-fin near-threshold 7nm inverter: kOhm-scale drive.
    assert 1e3 < inverter.drive_resistance < 1e5
    assert inverter.c_input > 0


def test_inverter_delay_increases_with_load(inverter):
    assert inverter.delay(1e-15) < inverter.delay(5e-15)


def test_inverter_energy_includes_load(inverter):
    e_small = inverter.energy(1e-15)
    e_large = inverter.energy(2e-15)
    v = inverter.v_supply
    assert e_large - e_small == pytest.approx(1e-15 * v * v, rel=1e-6)


def test_gate_model_is_affine():
    gate = GateCharacterization(
        name="g", d0=1e-12, drive_resistance=1e4, e0=1e-16,
        v_supply=0.45, c_input=1e-16,
    )
    assert gate.delay(0.0) == pytest.approx(1e-12)
    assert gate.delay(1e-15) == pytest.approx(1e-12 + 1e4 * 1e-15)
    assert gate.energy(0.0) == pytest.approx(1e-16)


def test_nand_models_from_characterization(hvt_char):
    nands = hvt_char.decoder.nands
    inv = hvt_char.decoder.inverter
    # Stacked NFETs: higher fan-in means weaker drive.
    resistances = [nands[k].drive_resistance for k in sorted(nands)]
    assert all(a < b for a, b in zip(resistances, resistances[1:]))
    assert nands[2].drive_resistance > inv.drive_resistance
