"""Array geometry: the paper's wire-capacitance rules."""

import pytest

from repro.array import ArrayGeometry


@pytest.fixture(scope="module")
def geometry():
    return ArrayGeometry()


def test_metal_pitch_and_wire_cap(geometry):
    assert geometry.p_metal == pytest.approx(43e-9)
    assert geometry.c_w_per_m == pytest.approx(0.17e-15 / 1e-6)


def test_c_width_value(geometry):
    # 5 * 43 nm * 0.17 fF/um = 0.03655 fF.
    assert geometry.c_width == pytest.approx(0.03655e-15, rel=1e-6)


def test_c_height_is_40_percent(geometry):
    assert geometry.c_height == pytest.approx(0.4 * geometry.c_width)


def test_cell_aspect_ratio(geometry):
    # The paper: cell width is 2.5x its height.
    assert geometry.cell_width / geometry.cell_height == pytest.approx(2.5)


def test_wire_capacitance_accumulates(geometry):
    assert geometry.row_wire_capacitance(64) == pytest.approx(
        64 * geometry.c_width
    )
    assert geometry.column_wire_capacitance(128) == pytest.approx(
        128 * geometry.c_height
    )


def test_footprint(geometry):
    width, height = geometry.footprint(64, 128)
    assert width == pytest.approx(128 * geometry.cell_width)
    assert height == pytest.approx(64 * geometry.cell_height)


def test_square_aspect_needs_fewer_columns(geometry):
    """Because cells are 2.5x wider than tall, a physically square
    macro has 2.5x more rows than columns."""
    assert geometry.aspect_ratio(160, 64) == pytest.approx(1.0)
