"""Waveform measurements: crossings, delays, integrals, energies."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.spice.waveform import TransientResult, Waveform


def ramp_waveform():
    t = np.linspace(0.0, 10.0, 101)
    return Waveform(t, t.copy(), "ramp")


def test_waveform_shape_validation():
    with pytest.raises(ValueError):
        Waveform([0, 1], [0], "bad")
    with pytest.raises(ValueError):
        Waveform([0], [0], "short")


def test_value_at_interpolates():
    w = ramp_waveform()
    assert w.value_at(2.5) == pytest.approx(2.5)


def test_initial_and_final():
    w = ramp_waveform()
    assert w.initial == 0.0
    assert w.final == 10.0


def test_cross_rising_exact_interpolation():
    w = ramp_waveform()
    assert w.cross(3.3, "rise") == pytest.approx(3.3)


def test_cross_falling():
    t = np.linspace(0.0, 10.0, 101)
    w = Waveform(t, 10.0 - t, "fall")
    assert w.cross(4.0, "fall") == pytest.approx(6.0)


def test_cross_occurrence_selection():
    t = np.linspace(0.0, 2.0 * np.pi, 1001)
    w = Waveform(t, np.sin(t), "sine")
    first = w.cross(0.5, "rise", occurrence=1)
    assert first == pytest.approx(np.arcsin(0.5), abs=0.01)
    second_rise_missing = w.crosses(0.5, "rise")
    assert second_rise_missing  # at least one exists
    fall = w.cross(0.5, "fall")
    assert fall == pytest.approx(np.pi - np.arcsin(0.5), abs=0.01)


def test_cross_missing_raises_with_context():
    w = ramp_waveform()
    with pytest.raises(CharacterizationError) as err:
        w.cross(99.0)
    assert "ramp" in str(err.value)
    assert not w.crosses(99.0)


def test_cross_edge_filtering():
    t = np.linspace(0.0, 10.0, 101)
    w = Waveform(t, t.copy(), "ramp")
    with pytest.raises(CharacterizationError):
        w.cross(5.0, "fall")


def test_integral_of_ramp():
    w = ramp_waveform()
    assert w.integral() == pytest.approx(50.0)


def make_result():
    times = np.linspace(0.0, 1.0, 11)
    nodes = {"a": times * 2.0, "b": 2.0 - times * 2.0}
    branches = {"vs": np.full_like(times, -1e-3)}
    svolt = {"vs": np.full_like(times, 2.0)}
    return TransientResult(times, nodes, branches, svolt)


def test_result_node_access():
    res = make_result()
    assert res.node("a").final == pytest.approx(2.0)
    assert res.node("gnd").final == 0.0
    with pytest.raises(KeyError):
        res.node("zzz")
    assert set(res.node_names) == {"a", "b"}


def test_result_delay():
    res = make_result()
    # a rises through 1.0 at t=0.5; b falls through 1.0 at t=0.5.
    assert res.delay("a", "b", 1.0, "rise", "fall") == pytest.approx(0.0)


def test_delivered_power_and_energy():
    res = make_result()
    power = res.delivered_power("vs")
    # -V*I = -2.0 * (-1e-3) = +2 mW constant.
    assert np.allclose(power.values, 2e-3)
    assert res.delivered_energy("vs") == pytest.approx(2e-3)
    assert res.delivered_energy("vs", t_start=0.5) == pytest.approx(1e-3)
    # Degenerate window returns zero.
    assert res.delivered_energy("vs", t_start=0.99, t_stop=1.0) in (
        pytest.approx(2e-5, rel=0.5), 0.0
    )


def test_branch_current_waveform():
    res = make_result()
    assert res.branch_current("vs").final == pytest.approx(-1e-3)
