"""Cross-cutting property tests for the circuit simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import (
    Circuit,
    operating_point,
    parse_netlist,
    step,
    transient,
    write_netlist,
)


@settings(max_examples=25, deadline=None)
@given(
    resistances=st.lists(st.floats(min_value=100.0, max_value=1e5),
                         min_size=2, max_size=5),
    v_in=st.floats(min_value=0.2, max_value=5.0),
)
def test_parallel_resistors_conductances_add(resistances, v_in):
    """Property: N parallel resistors draw V * sum(1/R)."""
    circuit = Circuit("parallel")
    circuit.add_vsource("vs", "a", "0", v_in)
    for k, r in enumerate(resistances):
        circuit.add_resistor("r%d" % k, "a", "0", r)
    sol = operating_point(circuit)
    expected = v_in * sum(1.0 / r for r in resistances)
    assert sol.source_current("vs") == pytest.approx(expected, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=0.2e-15, max_value=5e-15),
                  min_size=1, max_size=4),
    v_step=st.floats(min_value=0.2, max_value=2.0),
)
def test_total_charge_delivered_to_parallel_caps(caps, v_step):
    """Property: after settling, the source delivered sum(C)*V^2 into
    parallel RC branches (half stored, half dissipated — total C*V^2)."""
    circuit = Circuit("rc_bank")
    circuit.add_vsource("vs", "a", "0", step(1e-12, 0.0, v_step, 1e-15))
    for k, c in enumerate(caps):
        circuit.add_resistor("r%d" % k, "a", "m%d" % k, 5e3)
        circuit.add_capacitor("c%d" % k, "m%d" % k, "0", c)
    tau_max = 5e3 * max(caps)
    result = transient(circuit, 1e-12 + 12.0 * tau_max, tau_max / 40.0)
    expected = sum(caps) * v_step ** 2
    assert result.delivered_energy("vs") == pytest.approx(
        expected, rel=0.05
    )


@settings(max_examples=25, deadline=None)
@given(
    r_values=st.lists(st.floats(min_value=10.0, max_value=9.9e5),
                      min_size=1, max_size=6),
    v_value=st.floats(min_value=0.1, max_value=9.0),
)
def test_netlist_round_trip_preserves_solution(r_values, v_value):
    """Property: write_netlist(parse) round-trips arbitrary ladders."""
    circuit = Circuit("ladder")
    circuit.add_vsource("VS", "n0", "0", v_value)
    for k, r in enumerate(r_values):
        circuit.add_resistor("R%d" % k, "n%d" % k, "n%d" % (k + 1), r)
    circuit.add_resistor("RL", "n%d" % len(r_values), "0", 1e3)
    text = write_netlist(circuit)
    again = parse_netlist(text)
    a = operating_point(circuit)
    b = operating_point(again)
    for node in circuit.node_names:
        assert a[node] == pytest.approx(b[node], rel=1e-6, abs=1e-12)


def test_transistor_circuit_kcl_residual(library):
    """The converged inverter operating point satisfies KCL to solver
    tolerance when re-evaluated from raw device currents."""
    from repro.devices import FinFET

    circuit = Circuit("inv")
    circuit.add_vsource("vps", "vdd", "0", library.vdd)
    circuit.add_vsource("vin", "in", "0", 0.2)
    mp = FinFET(library.pfet_lvt)
    mn = FinFET(library.nfet_lvt)
    circuit.add_fet("mp", mp, "in", "out", "vdd")
    circuit.add_fet("mn", mn, "in", "out", "0")
    sol = operating_point(circuit)
    out = sol["out"]
    i_p = mp.current(0.2, out, library.vdd)
    i_n = mn.current(0.2, out, 0.0)
    assert i_p + i_n == pytest.approx(0.0, abs=1e-11)
