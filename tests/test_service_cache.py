"""Result cache and singleflight behavior (repro.service.cache)."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.cache import ResultCache, Singleflight


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        hit, value = cache.get("k")
        assert not hit and value is None
        cache.put("k", {"x": 1})
        hit, value = cache.get("k")
        assert hit and value == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)   # refreshes a's recency
        cache.put("c", 3)                    # evicts b, not a
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_ttl_expiration(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl=10.0, clock=clock)
        cache.put("k", "v")
        clock.advance(9.0)
        assert cache.get("k") == (True, "v")
        clock.advance(2.0)
        hit, _ = cache.get("k")
        assert not hit
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_put_overwrites(self):
        cache = ResultCache(max_entries=2)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == (True, 2)
        assert len(cache) == 1

    def test_invalidate_and_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        assert cache.get("a") == (False, None)
        cache.clear()
        assert len(cache) == 0

    def test_stats_payload(self):
        cache = ResultCache(max_entries=8, ttl=5.0)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["ttl_seconds"] == 5.0
        assert stats["max_entries"] == 8

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestSingleflight:
    def test_leader_and_followers_share_one_result(self):
        async def scenario():
            flight = Singleflight()
            future, leader = flight.join("k")
            assert leader
            f2, l2 = flight.join("k")
            f3, l3 = flight.join("k")
            assert not l2 and not l3
            assert f2 is future and f3 is future
            flight.resolve("k", 42)
            assert await f2 == 42
            assert len(flight) == 0
            # A later identical request starts a fresh flight.
            _, leader_again = flight.join("k")
            assert leader_again
            stats = flight.stats()
            assert stats["flights"] == 2
            assert stats["coalesced"] == 2
            return True

        assert asyncio.run(scenario())

    def test_reject_propagates_to_followers(self):
        async def scenario():
            flight = Singleflight()
            future, leader = flight.join("k")
            assert leader
            follower, _ = flight.join("k")
            flight.reject("k", RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await follower
            future.exception()  # mark retrieved
            return True

        assert asyncio.run(scenario())

    def test_distinct_keys_fly_independently(self):
        async def scenario():
            flight = Singleflight()
            fa, la = flight.join("a")
            fb, lb = flight.join("b")
            assert la and lb and fa is not fb
            flight.resolve("a", 1)
            flight.resolve("b", 2)
            return (await fa, await fb)

        assert asyncio.run(scenario()) == (1, 2)
