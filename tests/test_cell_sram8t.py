"""The 8T cell extension: decoupled-read properties."""

import pytest

from repro.cell import (
    AREA_RATIO_VS_6T,
    SRAM6TCell,
    SRAM8TCell,
    cell_leakage_power,
    hold_snm,
    read_current,
    read_snm,
)

VDD = 0.45


@pytest.fixture(scope="module")
def cell_8t(library):
    return SRAM8TCell.from_library(library, "hvt", "lvt")


def test_construction_validation(library, hvt_cell):
    with pytest.raises(TypeError):
        SRAM8TCell("not a core", library.nfet_lvt)
    with pytest.raises(ValueError):
        SRAM8TCell(hvt_cell, library.pfet_lvt)  # PFET read buffer
    with pytest.raises(ValueError):
        SRAM8TCell(hvt_cell, library.nfet_lvt, read_nfin=0)


def test_read_snm_equals_hold_snm(cell_8t):
    """The defining 8T property: reads do not disturb the cell."""
    assert cell_8t.read_snm(VDD) == pytest.approx(cell_8t.hold_snm(VDD))


def test_8t_read_margin_beats_assisted_6t(cell_8t, hvt_cell):
    """The 8T read margin (= HSNM) exceeds even the boosted 6T RSNM."""
    boosted_6t = read_snm(hvt_cell, vdd=VDD, v_ddc=0.55)
    assert cell_8t.read_snm(VDD) > boosted_6t


def test_hold_snm_matches_core(cell_8t, hvt_cell):
    assert cell_8t.hold_snm(VDD) == pytest.approx(hold_snm(hvt_cell, VDD))


def test_lvt_read_port_beats_6t_read_current(cell_8t, hvt_cell):
    """An LVT read port on an HVT core out-drives the 6T-HVT read stack
    without any assist rail."""
    i_8t = cell_8t.read_current(VDD)
    i_6t = read_current(hvt_cell, vdd=VDD)
    assert i_8t > 1.5 * i_6t


def test_read_port_upsizing_scales_current(library):
    x1 = SRAM8TCell.from_library(library, "hvt", "lvt", read_nfin=1)
    x2 = SRAM8TCell.from_library(library, "hvt", "lvt", read_nfin=2)
    assert x2.read_current(VDD) == pytest.approx(
        2.0 * x1.read_current(VDD), rel=0.01
    )


def test_hvt_read_port_roughly_matches_6t(library, hvt_cell):
    """With an HVT read port the stack current is comparable to the 6T
    read current (same devices, similar 2-high stack)."""
    all_hvt = SRAM8TCell.from_library(library, "hvt", "hvt")
    ratio = all_hvt.read_current(VDD) / read_current(hvt_cell, vdd=VDD)
    assert 0.5 < ratio < 2.0


def test_leakage_overhead(cell_8t, hvt_cell):
    """The read buffer adds leakage (the price of the LVT port), but
    the total stays far below the 6T-LVT cell."""
    leak_8t = cell_8t.leakage_power(VDD)
    leak_6t_hvt = cell_leakage_power(hvt_cell, VDD)
    assert leak_8t > leak_6t_hvt
    assert leak_8t < 1.692e-9  # still below the 6T-LVT cell


def test_all_hvt_8t_leakage_close_to_core(library, hvt_cell):
    all_hvt = SRAM8TCell.from_library(library, "hvt", "hvt")
    leak = all_hvt.leakage_power(VDD)
    core = cell_leakage_power(hvt_cell, VDD)
    assert core < leak < 1.6 * core


def test_area_ratio_documented():
    assert AREA_RATIO_VS_6T == pytest.approx(1.3)


def test_repr(cell_8t):
    text = repr(cell_8t)
    assert "core vt=335" in text
    assert "read vt=254" in text
