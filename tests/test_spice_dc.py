"""DC analysis: exactness on linear circuits, KCL on random networks,
bistable state selection, sweep continuity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import DeviceLibrary, FinFET
from repro.spice import Circuit, dc_sweep, operating_point

LIB = DeviceLibrary.default_7nm()
VDD = LIB.vdd


def divider(r1=1000.0, r2=1000.0, v=1.0):
    c = Circuit("divider")
    c.add_vsource("vs", "a", "0", v)
    c.add_resistor("r1", "a", "m", r1)
    c.add_resistor("r2", "m", "0", r2)
    return c


def test_resistor_divider_exact():
    sol = operating_point(divider(3000.0, 1000.0, 2.0))
    assert sol["m"] == pytest.approx(0.5)
    assert sol.source_current("vs") == pytest.approx(2.0 / 4000.0)


def test_source_current_sign_convention():
    # 1 V across 2 kOhm: the source delivers 0.5 mA out of its + node.
    sol = operating_point(divider())
    # MNA branch current flows into the + terminal, hence negative here.
    assert sol.branch_currents["vs"] == pytest.approx(-0.5e-3)
    assert sol.source_current("vs") == pytest.approx(0.5e-3)
    # Delivered power is positive for a supplying source.
    assert sol.source_power("vs", 1.0) == pytest.approx(0.5e-3)


def test_current_source_into_resistor():
    c = Circuit()
    c.add_isource("i1", "0", "a", 1e-3)  # pushes current into node a
    c.add_resistor("r1", "a", "0", 2000.0)
    sol = operating_point(c)
    assert sol["a"] == pytest.approx(2.0)


def test_two_sources_superposition():
    c = Circuit()
    c.add_vsource("v1", "a", "0", 1.0)
    c.add_vsource("v2", "b", "0", -1.0)
    c.add_resistor("r1", "a", "m", 1000.0)
    c.add_resistor("r2", "b", "m", 1000.0)
    sol = operating_point(c)
    assert sol["m"] == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=10.0, max_value=1e6),
                min_size=3, max_size=8),
       st.floats(min_value=0.1, max_value=10.0))
def test_kcl_on_random_resistor_ladders(resistances, v_in):
    """Property: solved ladders satisfy KCL at every internal node."""
    c = Circuit("ladder")
    c.add_vsource("vs", "n0", "0", v_in)
    for k, r in enumerate(resistances):
        c.add_resistor("r%d" % k, "n%d" % k, "n%d" % (k + 1), r)
    c.add_resistor("rload", "n%d" % len(resistances), "0", 500.0)
    sol = operating_point(c)
    voltages = [v_in] + [sol["n%d" % (k + 1)]
                         for k in range(len(resistances))]
    # Current through each series resistor must be identical.
    currents = [
        (voltages[k] - voltages[k + 1]) / resistances[k]
        for k in range(len(resistances))
    ]
    tail = voltages[-1] / 500.0
    for current in currents:
        assert current == pytest.approx(tail, rel=1e-6, abs=1e-12)


def latch_circuit():
    """Cross-coupled inverters: a bistable circuit."""
    c = Circuit("latch")
    c.add_vsource("vps", "vdd", "0", VDD)
    c.add_fet("p1", FinFET(LIB.pfet_lvt), "b", "a", "vdd")
    c.add_fet("n1", FinFET(LIB.nfet_lvt), "b", "a", "0")
    c.add_fet("p2", FinFET(LIB.pfet_lvt), "a", "b", "vdd")
    c.add_fet("n2", FinFET(LIB.nfet_lvt), "a", "b", "0")
    return c


def test_bistable_initial_guess_selects_state():
    high_a = operating_point(latch_circuit(),
                             initial_guess={"a": VDD, "b": 0.0})
    assert high_a["a"] > 0.9 * VDD
    assert high_a["b"] < 0.1 * VDD
    high_b = operating_point(latch_circuit(),
                             initial_guess={"a": 0.0, "b": VDD})
    assert high_b["b"] > 0.9 * VDD
    assert high_b["a"] < 0.1 * VDD


def test_inverter_vtc_endpoints_and_monotonicity():
    c = Circuit("inv")
    c.add_vsource("vps", "vdd", "0", VDD)
    c.add_vsource("vin", "in", "0", 0.0)
    c.add_fet("mp", FinFET(LIB.pfet_lvt), "in", "out", "vdd")
    c.add_fet("mn", FinFET(LIB.nfet_lvt), "in", "out", "0")
    sols = dc_sweep(c, "vin", np.linspace(0.0, VDD, 31),
                    initial_guess={"out": VDD})
    outs = [s["out"] for s in sols]
    assert outs[0] > 0.98 * VDD
    assert outs[-1] < 0.02 * VDD
    assert all(a >= b - 1e-9 for a, b in zip(outs, outs[1:]))


def test_dc_sweep_restores_source_value():
    c = divider()
    source = c.element("vs")
    dc_sweep(c, "vs", [0.5, 1.0, 1.5])
    assert source.value == 1.0


def test_dc_sweep_requires_voltage_source():
    c = divider()
    with pytest.raises(TypeError):
        dc_sweep(c, "r1", [1.0])


def test_solution_getitem():
    sol = operating_point(divider())
    assert sol["m"] == sol.voltages["m"]
    assert sol.iterations >= 1
