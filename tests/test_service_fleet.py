"""Sharded serving across peered replicas: consistent routing, proxy
metadata, failover to local compute, fleet introspection, metrics
aggregation — plus the keep-alive client plumbing the fleet rides on."""

from __future__ import annotations

import socket
import time

import pytest

from repro.service import ServerThread, ServiceClient, ServiceConfig

from .conftest import CACHE_PATH


def free_ports(n):
    sockets = [socket.socket() for _ in range(n)]
    try:
        for sock in sockets:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def fleet_config(port, peer_ports, tmp_path=None, name=None, **extra):
    peers = tuple("http://127.0.0.1:%d" % p for p in peer_ports)
    kwargs = dict(port=port, executor="thread", workers=2,
                  cache_path=CACHE_PATH, peers=peers,
                  probe_interval_s=0.2)
    if tmp_path is not None:
        kwargs["store_path"] = str(tmp_path / ("%s.db" % name))
    kwargs.update(extra)
    return ServiceConfig(**kwargs)


@pytest.fixture(scope="module")
def pair(paper_session, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("fleet")
    port_a, port_b = free_ports(2)
    with ServerThread(fleet_config(port_a, [port_b], tmp_path, "a"),
                      session=paper_session) as replica_a:
        with ServerThread(fleet_config(port_b, [port_a], tmp_path, "b"),
                          session=paper_session) as replica_b:
            # Let the initial probes see each other.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if (replica_a.server.fleet.healthy_peers()
                        and replica_b.server.fleet.healthy_peers()):
                    break
                time.sleep(0.05)
            yield replica_a, replica_b


# ---------------------------------------------------------------------------
# Ring agreement and shard routing
# ---------------------------------------------------------------------------

def test_replicas_derive_identical_rings(pair):
    replica_a, replica_b = pair
    ring_a = replica_a.server.fleet.ring
    ring_b = replica_b.server.fleet.ring
    assert ring_a.nodes == ring_b.nodes
    for n in range(50):
        key = "probe:%d" % n
        assert ring_a.node_for(key) == ring_b.node_for(key)


def test_non_owner_proxies_to_owner_with_shard_meta(pair):
    replica_a, replica_b = pair
    with ServiceClient(port=replica_a.port) as ca, \
            ServiceClient(port=replica_b.port) as cb:
        first = ca.optimize(256, flavor="lvt", method="M1")
        second = cb.optimize(256, flavor="lvt", method="M1")
    proxied = [p for p in (first, second) if p["meta"].get("proxied")]
    assert len(proxied) == 1
    owner_url = proxied[0]["meta"]["shard"]
    assert owner_url in (replica_a.server.fleet.self_url,
                         replica_b.server.fleet.self_url)
    # Both replicas agree on the answer itself.
    assert first["design"] == second["design"]
    assert first["metrics"]["edp"] == second["metrics"]["edp"]


def test_proxied_key_warms_the_local_cache(pair):
    replica_a, replica_b = pair
    with ServiceClient(port=replica_a.port) as ca, \
            ServiceClient(port=replica_b.port) as cb:
        first = ca.optimize(512, flavor="lvt", method="M1")
        second = cb.optimize(512, flavor="lvt", method="M1")
        # Repeat on the replica that proxied: now a local cache hit,
        # no second hop.
        repeat_client = ca if first["meta"].get("proxied") else cb
        repeat = repeat_client.optimize(512, flavor="lvt", method="M1")
    assert repeat["meta"]["cached"] is True
    assert repeat["metrics"]["edp"] == first["metrics"]["edp"]


def test_forwarded_requests_never_loop(pair):
    """A request already carrying the forwarded marker must be served
    locally no matter who owns the key."""
    replica_a, _ = pair
    with ServiceClient(port=replica_a.port) as client:
        for capacity in (128, 256, 512, 1024):
            status, payload, _ = client.request(
                "POST", "/v1/optimize",
                {"capacity_bytes": capacity, "flavor": "lvt",
                 "method": "M1", "engine": "vectorized"},
                extra_headers={"X-Fleet-Forwarded": "1"})
            assert status == 200
            assert "proxied" not in payload["meta"]


# ---------------------------------------------------------------------------
# Failover
# ---------------------------------------------------------------------------

def test_dead_peer_fails_over_to_local_compute(paper_session,
                                               tmp_path):
    port_live, port_dead = free_ports(2)
    with ServerThread(fleet_config(port_live, [port_dead]),
                      session=paper_session) as survivor:
        fleet = survivor.server.fleet
        # The peer never came up; probes must have marked it down.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not fleet.healthy_peers():
                break
            time.sleep(0.05)
        assert fleet.healthy_peers() == []
        with ServiceClient(port=survivor.port) as client:
            # Whatever the owner, every request is answered locally.
            for capacity in (128, 256, 512, 1024):
                payload = client.optimize(capacity, flavor="lvt",
                                          method="M1")
                assert payload["metrics"]["edp"] > 0
                assert "proxied" not in payload["meta"]
        remote_owned = [k for k in ("s:%d" % n for n in range(64))
                        if fleet.owner_of(k) != fleet.self_url]
        assert remote_owned    # the ring does assign keys to the peer
        # ... but routing answers self for all of them while it's down.
        assert all(fleet.route(k) == (fleet.self_url, None)
                   for k in remote_owned)


def _wait_peers_healthy(fleet, timeout=10.0):
    """Block until every peer is healthy again (probes run at 0.2 s,
    so a peer marked down by an earlier injected failure recovers)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(fleet.healthy_peers()) == len(fleet.peers):
            return
        time.sleep(0.05)
    raise AssertionError("peers never became healthy: %r"
                         % [p.to_payload() for p in fleet.peers.values()])


@pytest.fixture(scope="module")
def trio(paper_session):
    """Three live replicas in a full mesh — enough ring members for a
    failed proxy hop to have a *remote* next preference."""
    ports = free_ports(3)
    replicas = []
    try:
        for port in ports:
            peer_ports = [p for p in ports if p != port]
            replica = ServerThread(fleet_config(port, peer_ports),
                                   session=paper_session)
            replica.__enter__()
            replicas.append(replica)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if all(len(r.server.fleet.healthy_peers()) == 2
                   for r in replicas):
                break
            time.sleep(0.05)
        yield replicas
    finally:
        for replica in reversed(replicas):
            replica.__exit__(None, None, None)


def test_proxy_retry_walks_to_next_ring_preference(trio):
    """When the owning peer's proxy hop fails, the retry budget tries
    the next healthy ring preference instead of computing locally —
    and the attempt is counted in the shard stats and /metrics."""
    from repro.service.api import parse_request

    entry = trio[0]
    fleet = entry.server.fleet
    _wait_peers_healthy(fleet)
    peer_urls = set(fleet.peers)
    chosen = None
    for capacity in (128, 256, 512, 1024, 2048, 4096, 8192, 16384):
        for flavor in ("lvt", "hvt"):
            body = {"capacity_bytes": capacity, "flavor": flavor,
                    "method": "M1", "engine": "vectorized"}
            pref = fleet.ring.preference(
                parse_request("/v1/optimize", dict(body)).key())
            if pref[0] in peer_urls and pref[1] in peer_urls:
                chosen = (body, pref)
                break
        if chosen:
            break
    assert chosen, "no probe key with two remote preferences"
    body, pref = chosen

    # Fail only the proxied POST hops to the first preference; health
    # probes (GET /healthz) keep passing so the peer stays eligible.
    first_peer = fleet.peers[pref[0]]
    real_request = first_peer.pool.request

    def flaky(method, path, *args, **kwargs):
        if method == "POST":
            raise OSError("injected proxy failure")
        return real_request(method, path, *args, **kwargs)

    before = dict(entry.server._shard_stats)
    first_peer.pool.request = flaky
    try:
        with ServiceClient(port=entry.port) as client:
            payload = client.request("POST", "/v1/optimize", body)[1]
    finally:
        first_peer.pool.request = real_request

    assert payload["meta"]["proxied"] is True
    assert payload["meta"]["shard"] == pref[1]
    stats = entry.server._shard_stats
    assert stats["proxy_retries"] == before["proxy_retries"] + 1
    assert stats["proxied"] == before["proxied"] + 1
    with ServiceClient(port=entry.port) as client:
        metrics = client.metrics()
    assert metrics["fleet"]["shards"]["proxy_retries"] >= 1


def test_zero_retry_budget_fails_over_locally(trio):
    """``proxy_retries=0`` restores the old single-attempt behavior:
    the failed hop falls straight back to local compute."""
    from repro.service.api import parse_request

    entry = trio[0]
    entry.server.config.proxy_retries = 0
    fleet = entry.server.fleet
    _wait_peers_healthy(fleet)
    peer_urls = set(fleet.peers)
    chosen = None
    for capacity in (128, 256, 512, 1024, 2048, 4096, 8192, 16384):
        for method in ("M2", "M1"):
            body = {"capacity_bytes": capacity, "flavor": "lvt",
                    "method": method, "engine": "loop"}
            pref = fleet.ring.preference(
                parse_request("/v1/optimize", dict(body)).key())
            if pref[0] in peer_urls and pref[1] in peer_urls:
                chosen = (body, pref)
                break
        if chosen:
            break
    assert chosen, "no probe key with two remote preferences"
    body, pref = chosen

    first_peer = fleet.peers[pref[0]]
    real_request = first_peer.pool.request

    def flaky(method, path, *args, **kwargs):
        if method == "POST":
            raise OSError("injected proxy failure")
        return real_request(method, path, *args, **kwargs)

    before = dict(entry.server._shard_stats)
    first_peer.pool.request = flaky
    try:
        with ServiceClient(port=entry.port) as client:
            payload = client.request("POST", "/v1/optimize", body)[1]
    finally:
        first_peer.pool.request = real_request
        entry.server.config.proxy_retries = 1

    assert "proxied" not in payload["meta"]
    stats = entry.server._shard_stats
    assert stats["proxy_retries"] == before["proxy_retries"]
    assert stats["failovers"] == before["failovers"] + 1


# ---------------------------------------------------------------------------
# Introspection: /v1/fleet, /v1/fleet/metrics, /metrics gauges
# ---------------------------------------------------------------------------

def test_fleet_payload_reports_topology_and_health(pair):
    replica_a, replica_b = pair
    with ServiceClient(port=replica_a.port) as client:
        payload = client.fleet()
    assert payload["enabled"] is True
    assert payload["self"] == replica_a.server.fleet.self_url
    assert [p["url"] for p in payload["peers"]] == \
        [replica_b.server.fleet.self_url]
    assert payload["peers"][0]["healthy"] is True
    assert sorted(payload["ring"]["nodes"]) == sorted(
        [replica_a.server.fleet.self_url,
         replica_b.server.fleet.self_url])
    assert set(payload["shards"]) == {"local", "remote_owned",
                                      "proxied", "failovers",
                                      "proxy_retries"}
    assert "store_pending" in payload    # both replicas carry stores


def test_fleet_disabled_payload_without_peers(paper_session):
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           cache_path=CACHE_PATH)
    with ServerThread(config, session=paper_session) as solo:
        with ServiceClient(port=solo.port) as client:
            payload = client.fleet()
    assert payload["enabled"] is False
    assert payload["peers"] == []


def test_fleet_metrics_aggregates_both_replicas(pair):
    replica_a, replica_b = pair
    with ServiceClient(port=replica_a.port) as client:
        client.optimize(128, flavor="lvt", method="M1")
        payload = client.fleet_metrics()
    urls = {replica_a.server.fleet.self_url,
            replica_b.server.fleet.self_url}
    assert set(payload["replicas"]) == urls
    totals = payload["totals"]
    assert totals["replicas_up"] == 2
    assert totals["replicas_down"] == 0
    assert totals["requests"] >= 1
    # Each replica sees one healthy peer; the fleet-wide gauge sums.
    assert totals["gauges"]["fleet.peers_healthy"] == 2


def test_metrics_exposes_queue_depth_gauges(paper_session, tmp_path):
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           cache_path=CACHE_PATH,
                           jobs_path=str(tmp_path / "gauge-jobs.db"),
                           job_workers=0)
    with ServerThread(config, session=paper_session) as service:
        with ServiceClient(port=service.port) as client:
            client.submit_job({"capacities": [128], "flavors": ["lvt"],
                               "methods": ["M1"]})
            gauges = client.metrics()["gauges"]
    assert gauges["jobs.queued"] == 1
    for state in ("running", "done", "failed", "cancelled"):
        assert gauges["jobs.%s" % state] == 0


def test_fleet_section_in_metrics(pair):
    replica_a, _ = pair
    with ServiceClient(port=replica_a.port) as client:
        payload = client.metrics()
    fleet = payload["fleet"]
    assert fleet["self"] == replica_a.server.fleet.self_url
    assert fleet["peers_total"] == 1
    assert fleet["peers_healthy"] == 1
    assert payload["gauges"]["fleet.peers_healthy"] == 1


# ---------------------------------------------------------------------------
# ServiceClient plumbing the fleet depends on
# ---------------------------------------------------------------------------

def test_sequential_requests_reuse_one_connection(pair):
    replica_a, _ = pair
    with ServiceClient(port=replica_a.port) as client:
        for _ in range(5):
            client.healthz()
        assert client.connections_opened == 1


def test_connect_timeout_defaults_to_read_timeout():
    client = ServiceClient(timeout=123.0)
    assert client.connect_timeout == 123.0
    client = ServiceClient(timeout=300.0, connect_timeout=2.0)
    assert client.connect_timeout == 2.0


def test_short_connect_timeout_with_long_read_budget(pair):
    """The fleet pattern: fail fast on dead peers, stream slowly from
    live ones — both on the same client."""
    replica_a, _ = pair
    with ServiceClient(port=replica_a.port, timeout=300.0,
                       connect_timeout=2.0) as client:
        payload = client.optimize(128, flavor="lvt", method="M1")
        assert payload["metrics"]["edp"] > 0
        assert client.connections_opened == 1
