"""Service-level jobs API, store dedup, request-id correlation, and
client backoff — a real server with background job workers."""

from __future__ import annotations

import time

import pytest

from repro import perf
from repro.errors import ServiceError
from repro.service import ServerThread, ServiceClient, ServiceConfig

from .conftest import CACHE_PATH

SPEC = {"capacities": [128], "flavors": ["lvt"], "methods": ["M1", "M2"]}


@pytest.fixture(scope="module")
def service(paper_session, tmp_path_factory):
    db_path = str(tmp_path_factory.mktemp("jobs") / "jobs.db")
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           max_wait_ms=5.0, cache_path=CACHE_PATH,
                           jobs_path=db_path, job_workers=1,
                           job_poll_ms=50.0)
    with ServerThread(config, session=paper_session) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


def counter_value(name):
    return perf.get_registry().snapshot()["counters"].get(name, 0)


# ---------------------------------------------------------------------------
# Jobs API
# ---------------------------------------------------------------------------

def test_submit_runs_to_done_with_results(client):
    accepted = client.submit_job(SPEC)
    assert accepted["state"] == "queued"
    assert accepted["kind"] == "study"

    job = client.wait_for_job(accepted["id"], timeout=300.0,
                              interval=0.1)
    assert job["state"] == "done"
    assert job["progress"]["completed"] == job["progress"]["total"] == 2
    result = job["result"]
    assert result["key"].startswith("sweep-")
    assert len(result["cells"]) == 2
    for cell in result["cells"]:
        assert cell["capacity_bytes"] == 128
        assert cell["flavor"] == "lvt"
        assert cell["metrics"]["edp"] > 0
        assert "landscape" not in cell


def test_optimize_deduped_against_job_results(client):
    """A cell the background worker already computed must come straight
    out of the experiment store — no second engine search."""
    job = client.submit_job(SPEC)
    client.wait_for_job(job["id"], timeout=300.0, interval=0.1)

    before = counter_value("service.engine.optimize_searches")
    payload = client.optimize(128, flavor="lvt", method="M1",
                              engine="vectorized")
    after = counter_value("service.engine.optimize_searches")
    assert after == before
    assert payload["meta"]["stored"] is True
    assert payload["metrics"]["edp"] > 0
    assert payload["engine"] == "vectorized"


def test_submit_bad_spec_is_400(client):
    status, payload, _ = client.request(
        "POST", "/v1/jobs",
        {"kind": "study", "spec": {"capacities": [100]}}, check=False)
    assert status == 400
    assert "powers of two" in payload["error"]


def test_submit_unknown_kind_is_400(client):
    status, payload, _ = client.request(
        "POST", "/v1/jobs", {"kind": "telepathy", "spec": {}},
        check=False)
    assert status == 400
    assert "kind" in payload["error"]


def test_jobs_listing_and_counts(client):
    job = client.submit_job(SPEC)
    client.wait_for_job(job["id"], timeout=300.0, interval=0.1)
    listing = client.jobs()
    assert any(entry["id"] == job["id"] for entry in listing["jobs"])
    assert listing["counts"]["done"] >= 1
    # /healthz and /metrics surface the same counts.
    assert client.healthz()["jobs"]["done"] >= 1
    metrics = client.metrics()
    assert metrics["jobs"]["workers"] == 1
    assert metrics["store"]["total"] >= 1


def test_unknown_job_is_404(client):
    status, payload, _ = client.request("GET", "/v1/jobs/job-nope",
                                        check=False)
    assert status == 404
    assert "job-nope" in payload["error"]


def test_cancel_terminal_job_is_409(client):
    job = client.submit_job(SPEC)
    client.wait_for_job(job["id"], timeout=300.0, interval=0.1)
    with pytest.raises(ServiceError) as excinfo:
        client.cancel_job(job["id"])
    assert excinfo.value.status == 409


def test_jobs_method_policy(client):
    status, _, headers = client.request("PUT", "/v1/jobs", body={},
                                        check=False)
    assert status == 405
    assert "POST" in headers.get("allow", "")
    status, _, headers = client.request("POST", "/v1/jobs/some-id",
                                        body={}, check=False)
    assert status == 405


def test_jobs_disabled_server_answers_404(paper_session):
    config = ServiceConfig(port=0, executor="thread", workers=1,
                           cache_path=CACHE_PATH)
    with ServerThread(config, session=paper_session) as running:
        with ServiceClient(port=running.port) as c:
            status, payload, _ = c.request("POST", "/v1/jobs",
                                           {"kind": "study", "spec": {}},
                                           check=False)
            assert status == 404
            assert "jobs" in payload["error"]


# ---------------------------------------------------------------------------
# Request-id correlation
# ---------------------------------------------------------------------------

def test_request_id_echoed(client):
    _, _, headers = client.request("GET", "/healthz",
                                   request_id="my-rid-42")
    assert headers["x-request-id"] == "my-rid-42"


def test_request_id_minted_when_absent(service):
    import json
    import socket

    raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
    with socket.create_connection(("127.0.0.1", service.port),
                                  timeout=30) as sock:
        sock.sendall(raw)
        response = sock.recv(65536).decode("latin-1")
    head = response.split("\r\n\r\n", 1)[0]
    rid_lines = [line for line in head.split("\r\n")
                 if line.lower().startswith("x-request-id:")]
    assert len(rid_lines) == 1
    assert rid_lines[0].split(":", 1)[1].strip().startswith("req-")
    assert json.loads(response.split("\r\n\r\n", 1)[1])["status"] == "ok"


def test_request_id_attached_to_compute_responses(client):
    payload_headers = client.request(
        "POST", "/v1/optimize",
        {"capacity_bytes": 128, "flavor": "lvt", "method": "M2"},
        request_id="rid-compute-1")[2]
    assert payload_headers["x-request-id"] == "rid-compute-1"


# ---------------------------------------------------------------------------
# Client 429 backoff (satellite: Retry-After honored, bounded)
# ---------------------------------------------------------------------------

def test_client_retries_429_with_backoff(paper_session):
    """Against a zero-capacity server every attempt 429s; the client
    must sleep between attempts and surface the final 429."""
    config = ServiceConfig(port=0, executor="thread", workers=1,
                           max_pending=0, cache_path=CACHE_PATH)
    with ServerThread(config, session=paper_session) as running:
        client = ServiceClient(port=running.port, max_retries=2,
                               backoff_base=0.05, backoff_cap=0.2)
        with client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.optimize(128)
            elapsed = time.monotonic() - start
    assert excinfo.value.status == 429
    # Two sleeps, each capped at 0.2 s but at least the base schedule.
    assert 0.1 <= elapsed


def test_backoff_honors_retry_after_and_cap():
    """Deterministic unit check of the retry schedule: Retry-After
    dominates the exponential floor, the cap bounds both."""
    client = ServiceClient(port=1, max_retries=3, backoff_base=0.1,
                           backoff_cap=1.5)
    sleeps = []
    responses = [
        (429, {}, {"retry-after": "0.4"}),   # hint above the floor
        (429, {}, {}),                       # no hint -> floor 0.2
        (429, {}, {"retry-after": "60"}),    # hint above the cap
        (200, {"ok": True}, {}),
    ]
    client._roundtrip = lambda *a: responses[len(sleeps)]

    import repro.service.client as client_module
    original_sleep = client_module.time.sleep
    client_module.time.sleep = sleeps.append
    try:
        status, payload, _ = client.request("POST", "/v1/optimize", {})
    finally:
        client_module.time.sleep = original_sleep
    assert status == 200 and payload == {"ok": True}
    assert sleeps == [0.4, 0.2, 1.5]


def test_check_false_does_not_retry_429():
    client = ServiceClient(port=1, max_retries=5)
    calls = []

    def fake_roundtrip(*a):
        calls.append(1)
        return (429, {"error": "full"}, {"retry-after": "1"})

    client._roundtrip = fake_roundtrip
    status, _, _ = client.request("POST", "/v1/optimize", {},
                                  check=False)
    assert status == 429
    assert len(calls) == 1
