"""End-to-end tests of the optimization service (repro.service).

A real server on an ephemeral port, driven by the real client over
localhost.  The acceptance-critical properties live here:

* two concurrent identical optimize requests cost exactly one engine
  invocation (singleflight);
* a coalesced Monte Carlo batch is bit-identical to serial
  one-at-a-time calls against the engine directly;
* /metrics accounts for requests, batches, cache hits, and engine perf.
"""

from __future__ import annotations

import json
import socket
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import perf
from repro.cell.montecarlo import run_cell_montecarlo
from repro.cell.sram6t import SRAM6TCell
from repro.errors import ServiceError
from repro.service import ServerThread, ServiceClient, ServiceConfig


@pytest.fixture(scope="module")
def service(paper_session):
    """One shared thread-executor server for the module."""
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           max_wait_ms=5.0)
    with ServerThread(config, session=paper_session) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


def counter_value(name):
    return perf.get_registry().snapshot()["counters"].get(name, 0)


# ---------------------------------------------------------------------------
# Basic endpoints
# ---------------------------------------------------------------------------

def test_healthz(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["executor"] == "thread"
    assert health["uptime_seconds"] >= 0


def test_unknown_path_is_404(client):
    status, payload, _ = client.request("GET", "/nope", check=False)
    assert status == 404
    assert "unknown path" in payload["error"]


def test_wrong_method_is_405(client):
    status, _, headers = client.request("GET", "/v1/optimize", check=False)
    assert status == 405
    assert headers.get("allow") == "POST"
    status, _, headers = client.request("POST", "/healthz", body={},
                                        check=False)
    assert status == 405
    assert headers.get("allow") == "GET"


def test_invalid_body_is_400(client):
    status, payload, _ = client.request(
        "POST", "/v1/optimize", body={"capacity_bytes": 100},
        check=False)
    assert status == 400
    assert "power of two" in payload["error"]
    status, payload, _ = client.request("POST", "/v1/evaluate", body={},
                                        check=False)
    assert status == 400
    assert "design" in payload["error"]


def test_malformed_json_is_400(service):
    raw = (b"POST /v1/optimize HTTP/1.1\r\n"
           b"Content-Length: 9\r\n\r\nnot json!")
    with socket.create_connection(("127.0.0.1", service.port),
                                  timeout=30) as sock:
        sock.sendall(raw)
        response = sock.recv(65536).decode("latin-1")
    assert response.startswith("HTTP/1.1 400 ")
    body = json.loads(response.split("\r\n\r\n", 1)[1])
    assert "JSON" in body["error"]


def test_client_error_raises_service_error(client):
    with pytest.raises(ServiceError) as excinfo:
        client.optimize(100)
    assert excinfo.value.status == 400


# ---------------------------------------------------------------------------
# Optimize / evaluate correctness and caching
# ---------------------------------------------------------------------------

def test_optimize_matches_direct_engine(client, paper_session):
    from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy

    served = client.optimize(1024, flavor="hvt", method="M2")
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    direct = optimizer.optimize(1024 * 8, policy, engine="vectorized")
    assert served["design"]["n_r"] == direct.design.n_r
    assert served["design"]["n_c"] == direct.design.n_c
    assert served["design"]["v_ddc"] == direct.design.v_ddc
    assert served["design"]["v_wl"] == direct.design.v_wl
    assert served["metrics"]["edp"] == pytest.approx(direct.metrics.edp,
                                                     rel=0, abs=0)
    assert served["n_evaluated"] == direct.n_evaluated


def test_repeat_request_hits_result_cache(client):
    first = client.optimize(4096, flavor="hvt", method="M1")
    second = client.optimize(4096, flavor="hvt", method="M1")
    assert first["meta"]["cached"] is False
    assert second["meta"]["cached"] is True
    first.pop("meta")
    second.pop("meta")
    assert first == second


def test_field_order_shares_cache_key(client):
    # Canonicalization: same request spelled differently is one key.
    a = client.request("POST", "/v1/optimize", {
        "capacity_bytes": 16384, "flavor": "hvt", "method": "M2",
    })[1]
    b = client.request("POST", "/v1/optimize", {
        "method": "M2", "engine": "vectorized", "flavor": "hvt",
        "capacity_bytes": 16384,
    })[1]
    assert a["meta"]["cached"] is False
    assert b["meta"]["cached"] is True


def test_evaluate_matches_direct_model(client, paper_session):
    design = {"n_r": 64, "n_c": 32, "n_pre": 2, "n_wr": 2,
              "v_ddc": 0.60, "v_ssc": 0.0, "v_wl": 0.55, "v_bl": 0.0}
    served = client.evaluate(design, flavor="lvt")
    model = paper_session.model("lvt")
    from repro.array.model import DesignPoint
    direct = model.evaluate(64 * 32, DesignPoint(**design))
    assert served["metrics"]["edp"] == direct.edp
    assert served["metrics"]["e_total"] == direct.e_total
    assert served["metrics"]["d_array"] == direct.d_array
    margins = paper_session.constraint("lvt").margins(
        design["v_ddc"], design["v_ssc"], design["v_wl"], design["v_bl"])
    assert served["margins"]["hsnm"] == float(margins[0])


# ---------------------------------------------------------------------------
# Pareto endpoint
# ---------------------------------------------------------------------------

def test_pareto_matches_direct_front(client, paper_session):
    from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy
    from repro.opt.pareto import pareto_front

    served = client.pareto(1024, flavor="hvt", method="M2")
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    landscape = optimizer.optimize(1024 * 8, policy, keep_landscape=True,
                                   engine="fused").landscape
    expected = pareto_front(landscape)
    assert len(served["front"]) == len(expected)
    for row, p in zip(served["front"], expected):
        assert row["d_array"] == p.d_array
        assert row["e_total"] == p.e_total
        assert row["edp"] == p.edp
        assert row["n_r"] == p.n_r
        assert row["v_ssc"] == p.v_ssc
        assert row["n_pre"] == p.n_pre
        assert row["n_wr"] == p.n_wr
    assert served["engine"] == "pruned"
    assert served["n_tiles"] > 0
    assert 0 <= served["tiles_pruned"] < served["n_tiles"]


def test_pareto_best_weighted_unit_exponents_match_optimize(client):
    served = client.pareto(1024, flavor="hvt", method="M2")
    direct = client.optimize(1024, flavor="hvt", method="M2")
    picked = served["best_weighted"]
    assert picked["energy_exponent"] == 1.0
    assert picked["delay_exponent"] == 1.0
    assert picked["point"]["edp"] == direct["metrics"]["edp"]
    assert picked["point"]["n_r"] == direct["design"]["n_r"]


def test_pareto_repeat_request_hits_result_cache(client):
    first = client.pareto(4096, flavor="hvt", method="M1")
    second = client.pareto(4096, flavor="hvt", method="M1")
    assert first["meta"]["cached"] is False
    assert second["meta"]["cached"] is True
    first.pop("meta")
    second.pop("meta")
    assert first == second


def test_pareto_invalid_exponent_is_400(client):
    for bad in (0, -1.5, "x"):
        status, payload, _ = client.request(
            "POST", "/v1/pareto",
            body={"capacity_bytes": 1024, "energy_exponent": bad},
            check=False)
        assert status == 400
        assert "energy_exponent" in payload["error"]


def test_pareto_store_dedups_across_exponents(paper_session, tmp_path):
    # The stored front is exponent-free: two requests differing only in
    # the E^a D^b query run ONE sweep, and the server re-derives each
    # answer's best_weighted pick from the stored plain-data front.
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           max_wait_ms=5.0,
                           store_path=str(tmp_path / "store.db"))
    with ServerThread(config, session=paper_session) as running:
        before = counter_value("service.engine.pareto_sweeps")
        with ServiceClient(port=running.port) as c:
            a = c.pareto(512, flavor="lvt", method="M1")
            b = c.pareto(512, flavor="lvt", method="M1",
                         energy_exponent=1.0, delay_exponent=2.0)
        after = counter_value("service.engine.pareto_sweeps")
    assert after - before == 1
    assert a["front"] == b["front"]
    assert b["best_weighted"]["delay_exponent"] == 2.0
    # An ED^2 pick can only trade energy for delay relative to EDP.
    assert (b["best_weighted"]["point"]["d_array"]
            <= a["best_weighted"]["point"]["d_array"])


# ---------------------------------------------------------------------------
# Yield endpoint
# ---------------------------------------------------------------------------

def test_yield_matches_direct_study_cell(client, paper_session):
    from repro.yields.study import compute_yield_cell

    served = client.yield_study(1024, flavor="hvt", method="M2")
    direct = compute_yield_cell(paper_session, 1024, "hvt", "M2")
    expected = direct.summary()
    for field in ("delta_z", "sigma0", "delta_relaxed",
                  "sense_voltage_relaxed", "baseline_edp", "relaxed_edp",
                  "edp_gain", "yield_coded"):
        assert served[field] == expected[field], field
    assert served["code_described"] == "(72,64) SECDED"
    assert served["baseline_result"]["design"] is not None
    assert served["relaxed_result"]["metrics"]["edp"] \
        == expected["relaxed_edp"]
    assert served["engine"] == "pruned"


def test_yield_none_code_reproduces_fixed_delta(client):
    served = client.yield_study(1024, flavor="hvt", method="M2",
                                code="none")
    assert served["delta_z"] == 0.0
    assert served["edp_gain"] == 0.0
    assert served["baseline_result"]["design"] \
        == served["relaxed_result"]["design"]
    assert served["relaxed_edp"] == served["baseline_edp"]


def test_yield_repeat_request_hits_result_cache(client):
    first = client.yield_study(1024, flavor="hvt", method="M2")
    second = client.yield_study(1024, flavor="hvt", method="M2")
    assert second["meta"]["cached"] is True
    first.pop("meta")
    second.pop("meta")
    assert first == second


def test_yield_invalid_inputs_are_400(client):
    status, payload, _ = client.request(
        "POST", "/v1/yield",
        body={"capacity_bytes": 1024, "code": "not-a-code"},
        check=False)
    assert status == 400
    assert "code" in payload["error"]
    status, payload, _ = client.request(
        "POST", "/v1/yield",
        body={"capacity_bytes": 1024, "y_target": 1.5},
        check=False)
    assert status == 400
    assert "y_target" in payload["error"]


def test_yield_store_dedups_repeat_cells(paper_session, tmp_path):
    # A second server sharing the store serves the cell without
    # re-running either search (the study-cell payload is
    # content-addressed like /v1/optimize and /v1/pareto).
    store_path = str(tmp_path / "store.db")
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           max_wait_ms=5.0, store_path=store_path)
    with ServerThread(config, session=paper_session) as running:
        with ServiceClient(port=running.port) as c:
            first = c.yield_study(512, flavor="hvt", method="M2")
    before = counter_value("service.engine.yield_cells")
    with ServerThread(config, session=paper_session) as running:
        with ServiceClient(port=running.port) as c:
            second = c.yield_study(512, flavor="hvt", method="M2")
    after = counter_value("service.engine.yield_cells")
    assert after == before
    assert second["meta"]["stored"] is True
    assert second["relaxed_edp"] == first["relaxed_edp"]
    assert second["baseline_result"] == first["baseline_result"]


# ---------------------------------------------------------------------------
# Singleflight: N identical concurrent requests -> one engine invocation
# ---------------------------------------------------------------------------

def test_concurrent_identical_optimize_runs_engine_once(service):
    before = counter_value("service.engine.optimize_searches")

    def call():
        with ServiceClient(port=service.port) as c:
            return c.optimize(256, flavor="lvt", method="M1")

    with ThreadPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(lambda _: call(), range(2)))

    after = counter_value("service.engine.optimize_searches")
    assert after - before == 1
    assert results[0]["design"] == results[1]["design"]
    assert results[0]["metrics"] == results[1]["metrics"]
    # At least one of the two answers was computed (not a cache hit),
    # and neither triggered a second search.
    assert any(not r["meta"]["cached"] for r in results)


# ---------------------------------------------------------------------------
# Monte Carlo: coalesced batches are bit-identical to serial calls
# ---------------------------------------------------------------------------

def test_coalesced_montecarlo_is_bit_identical_to_serial(paper_session):
    # A dedicated server with a generous batch window so the three
    # concurrent draws coalesce into one vectorized solve.
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           max_wait_ms=250.0, max_batch=8)
    specs = [(6, 11), (4, 7), (5, 0)]
    with ServerThread(config, session=paper_session) as running:
        before = counter_value("service.engine.mc_coalesced_batches")

        def call(spec):
            n, seed = spec
            with ServiceClient(port=running.port) as c:
                return c.montecarlo(n, flavor="hvt", seed=seed,
                                    metrics=("hsnm",),
                                    include_samples=True)

        with ThreadPoolExecutor(max_workers=3) as pool:
            served = list(pool.map(call, specs))
        after = counter_value("service.engine.mc_coalesced_batches")

    assert after - before >= 1, "batch window missed: no coalesced solve"
    cell = SRAM6TCell.from_library(paper_session.library, "hvt")
    vdd = paper_session.library.vdd
    for (n, seed), payload in zip(specs, served):
        direct = run_cell_montecarlo(
            cell, n_samples=n, seed=seed, vdd=vdd, metrics=("hsnm",),
            engine="batched",
        )
        expected = [float(v) for v in direct.metric("hsnm").values]
        assert payload["samples"]["hsnm"] == expected   # bitwise equal
        assert payload["metrics"]["hsnm"]["mean"] == pytest.approx(
            direct.metric("hsnm").mean)
        assert payload["n"] == n and payload["seed"] == seed


def test_fused_optimize_requests_policy_batch_bit_identically(
        paper_session):
    # A dedicated server with a generous optimize batch window (via the
    # per-endpoint override) so both methods' concurrent requests fuse
    # into one policy-batched optimize_many dispatch.
    config = ServiceConfig(
        port=0, executor="thread", workers=2, max_wait_ms=5.0,
        endpoint_overrides={"optimize": {"max_wait_ms": 250.0}},
    )
    with ServerThread(config, session=paper_session) as running:
        before = counter_value("service.engine.optimize_fused_dispatches")

        def call(method):
            with ServiceClient(port=running.port) as c:
                return c.optimize(512, flavor="hvt", method=method,
                                  engine="fused")

        with ThreadPoolExecutor(max_workers=2) as pool:
            served = list(pool.map(call, ("M1", "M2")))
        after = counter_value("service.engine.optimize_fused_dispatches")
        with ServiceClient(port=running.port) as c:
            overrides = c.metrics()["batching"]["endpoint_overrides"]

    assert after - before >= 1, "batch window missed: no fused dispatch"
    assert overrides == {"optimize": {"max_wait_ms": 250.0}}
    from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt")
    )
    for method, payload in zip(("M1", "M2"), served):
        policy = make_policy(method, paper_session.yield_levels("hvt"))
        direct = optimizer.optimize(512 * 8, policy, engine="fused")
        assert payload["design"]["n_r"] == direct.design.n_r
        assert payload["design"]["v_ssc"] == float(direct.design.v_ssc)
        assert payload["metrics"]["edp"] == direct.metrics.edp
        assert payload["method"] == method


def test_montecarlo_summary_fields(client):
    payload = client.montecarlo(8, flavor="hvt", seed=3,
                                metrics=("hsnm", "rsnm"))
    assert set(payload["metrics"]) == {"hsnm", "rsnm"}
    for stats in payload["metrics"].values():
        assert set(stats) == {"mean", "sigma", "mu_minus_3sigma",
                              "yield_at_floor"}
    assert 0.0 <= payload["joint_yield_at_floor"] <= 1.0
    assert "samples" not in payload


# ---------------------------------------------------------------------------
# Backpressure and drain
# ---------------------------------------------------------------------------

def test_backpressure_answers_429_with_retry_after(paper_session):
    config = ServiceConfig(port=0, executor="thread", workers=1,
                           max_pending=0)
    with ServerThread(config, session=paper_session) as running:
        with ServiceClient(port=running.port) as c:
            status, payload, headers = c.request(
                "POST", "/v1/optimize", {"capacity_bytes": 128},
                check=False)
            assert status == 429
            assert "capacity" in payload["error"]
            assert int(headers["retry-after"]) >= 1
            # GET endpoints stay available under pressure.
            assert c.healthz()["status"] == "ok"


def test_drained_server_refuses_connections(paper_session):
    config = ServiceConfig(port=0, executor="thread", workers=1)
    with ServerThread(config, session=paper_session) as running:
        port = running.port
        with ServiceClient(port=port) as c:
            assert c.healthz()["status"] == "ok"
    with pytest.raises((ConnectionError, OSError)):
        socket.create_connection(("127.0.0.1", port), timeout=2).close()


# ---------------------------------------------------------------------------
# Metrics endpoint
# ---------------------------------------------------------------------------

def test_metrics_accounts_for_traffic(client):
    client.optimize(128, flavor="hvt", method="M2")
    client.optimize(128, flavor="hvt", method="M2")   # cache hit
    client.request("GET", "/nope", check=False)       # a 404
    metrics = client.metrics()

    requests = metrics["requests"]
    assert requests["total"] >= 3
    assert requests["by_route"].get("/v1/optimize", 0) >= 2
    assert requests["by_class"].get("2xx", 0) >= 2
    assert requests["errors_by_route"].get("/nope", 0) >= 1

    latency = metrics["latency_ms"]["/v1/optimize"]
    assert latency["count"] >= 2
    assert latency["p50"] <= latency["p99"]
    assert "le_inf" in latency["buckets"]

    assert metrics["batch_sizes"]["optimize"]["count"] >= 1
    assert metrics["cache"]["hits"] >= 1
    assert metrics["singleflight"]["flights"] >= 1
    assert metrics["batching"]["max_batch"] == 8

    # Engine perf merged into the payload (thread executor records in
    # the server process; "workers" holds process-pool deltas).
    server_perf = metrics["perf"]["server"]
    assert server_perf["counters"].get("service.engine.optimize_searches",
                                       0) >= 1
    assert "service.job.optimize" in server_perf["timers"]
    assert "counters" in metrics["perf"]["workers"]
