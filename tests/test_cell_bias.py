"""CellBias constructors and assist-level plumbing."""

import pytest

from repro.cell import CellBias


def test_defaults_are_nominal():
    bias = CellBias()
    assert bias.vdd == pytest.approx(0.45)
    assert bias.v_ddc == bias.vdd
    assert bias.v_ssc == 0.0


def test_hold_bias():
    bias = CellBias.hold(0.3)
    assert bias.v_wl == 0.0
    assert bias.v_bl == 0.3
    assert bias.v_blb == 0.3
    assert bias.v_ddc == 0.3


def test_read_bias_defaults():
    bias = CellBias.read(0.45)
    assert bias.v_wl == 0.45
    assert bias.v_bl == 0.45
    assert bias.v_ddc == 0.45


def test_read_bias_with_assists():
    bias = CellBias.read(0.45, v_ddc=0.55, v_ssc=-0.1)
    assert bias.v_ddc == 0.55
    assert bias.v_ssc == -0.1
    assert bias.cell_swing == pytest.approx(0.65)


def test_write_bias():
    bias = CellBias.write(0.45, v_wl=0.54, v_bl_low=-0.1)
    assert bias.v_wl == 0.54
    assert bias.v_bl == -0.1
    assert bias.v_blb == 0.45


def test_with_wordline_copy():
    bias = CellBias.read(0.45)
    other = bias.with_wordline(0.3)
    assert other.v_wl == 0.3
    assert bias.v_wl == 0.45


def test_with_rails_copy():
    bias = CellBias.read(0.45).with_rails(v_ddc=0.6)
    assert bias.v_ddc == 0.6
    assert bias.v_ssc == 0.0
    bias = bias.with_rails(v_ssc=-0.2)
    assert bias.v_ddc == 0.6
    assert bias.v_ssc == -0.2


def test_invalid_rail_ordering_rejected():
    with pytest.raises(ValueError):
        CellBias(v_ddc=0.1, v_ssc=0.2)


def test_nonpositive_vdd_rejected():
    with pytest.raises(ValueError):
        CellBias(vdd=0.0)
