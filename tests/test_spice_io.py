"""SPICE netlist import/export."""

import pytest

from repro.errors import NetlistError
from repro.spice import (
    operating_point,
    parse_netlist,
    parse_value,
    transient,
    write_netlist,
)

DIVIDER_DECK = """
* resistor divider
VS a 0 2.0
R1 a m 3k
R2 m 0 1k
.end
"""

INVERTER_DECK = """
* FinFET inverter driven by a pulse
VDD vdd 0 450m
VIN in 0 PULSE(0 450m 1p 0.1p 0.1p 20p)
MP1 out in vdd pfet_lvt
MN1 out in 0 nfet_lvt nfin=2
CL out 0 0.28f
.end
"""


def test_parse_value_suffixes():
    assert parse_value("1k") == pytest.approx(1e3)
    assert parse_value("0.28f") == pytest.approx(0.28e-15)
    assert parse_value("450m") == pytest.approx(0.45)
    assert parse_value("3meg") == pytest.approx(3e6)
    assert parse_value("2.5e-12") == pytest.approx(2.5e-12)
    assert parse_value("10p") == pytest.approx(1e-11)
    assert parse_value("-5n") == pytest.approx(-5e-9)


def test_parse_value_units_after_suffix():
    # "1kohm" style trailing unit letters are tolerated.
    assert parse_value("1kohm") == pytest.approx(1e3)


def test_parse_value_rejects_garbage():
    with pytest.raises(NetlistError):
        parse_value("abc")


def test_divider_deck_solves():
    circuit = parse_netlist(DIVIDER_DECK)
    sol = operating_point(circuit)
    assert sol["m"] == pytest.approx(0.5)


def test_comments_and_continuations():
    deck = """
* comment line
VS a 0 1.0   ; trailing comment
R1 a
+ m 1k
R2 m 0 1k
"""
    circuit = parse_netlist(deck)
    sol = operating_point(circuit)
    assert sol["m"] == pytest.approx(0.5)


def test_inverter_deck_transient(library):
    circuit = parse_netlist(INVERTER_DECK, library=library)
    result = transient(circuit, 10e-12, 0.05e-12)
    # Input rises at 1 ps; the 2-fin NFET pulls the output low.
    assert result.node("out").value_at(0.5e-12) == pytest.approx(
        0.45, abs=0.01
    )
    assert result.node("out").final < 0.1


def test_mos_card_requires_library():
    with pytest.raises(NetlistError):
        parse_netlist(INVERTER_DECK)


def test_unknown_model_rejected(library):
    with pytest.raises(NetlistError):
        parse_netlist("M1 d g s bogus_model\n", library=library)


def test_unknown_card_rejected():
    with pytest.raises(NetlistError):
        parse_netlist("X1 a b sub\n")


def test_unsupported_directive_rejected():
    with pytest.raises(NetlistError):
        parse_netlist(".tran 1p 10p\nR1 a 0 1k\n")


def test_pwl_source():
    deck = "VS a 0 PWL(0 0 1n 1.0)\nR1 a 0 1k\n"
    circuit = parse_netlist(deck)
    source = circuit.element("VS")
    assert source.voltage_at(0.0) == pytest.approx(0.0)
    assert source.voltage_at(0.5e-9) == pytest.approx(0.5)


def test_pwl_odd_args_rejected():
    with pytest.raises(NetlistError):
        parse_netlist("VS a 0 PWL(0 0 1n)\nR1 a 0 1k\n")


def test_round_trip_dc_deck(library):
    circuit = parse_netlist(DIVIDER_DECK)
    text = write_netlist(circuit, library)
    again = parse_netlist(text)
    assert operating_point(again)["m"] == pytest.approx(0.5)


def test_round_trip_fets(library):
    deck = """
VDD vdd 0 450m
VIN in 0 200m
MP1 out in vdd pfet_hvt nfin=3
MN1 out in 0 nfet_hvt
"""
    circuit = parse_netlist(deck, library=library)
    text = write_netlist(circuit, library)
    assert "pfet_hvt" in text and "nfin=3" in text
    again = parse_netlist(text, library=library)
    a = operating_point(circuit)["out"]
    b = operating_point(again)["out"]
    assert a == pytest.approx(b, abs=1e-9)


def test_time_varying_source_export_notes_limitation(library):
    circuit = parse_netlist(INVERTER_DECK, library=library)
    text = write_netlist(circuit, library)
    assert "t=0 value" in text
