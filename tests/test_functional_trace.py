"""Trace generators: distributions, bounds, reproducibility."""

import pytest

from repro.functional import (
    Access,
    sequential_trace,
    strided_trace,
    trace_statistics,
    uniform_trace,
    zipfian_trace,
)

N_WORDS = 256


def test_access_validation():
    with pytest.raises(ValueError):
        Access(op="x", address=0)
    with pytest.raises(ValueError):
        Access(op="r", address=-1)


def test_sequential_addresses_wrap():
    trace = sequential_trace(2 * N_WORDS, N_WORDS, seed=0)
    addresses = [a.address for a in trace]
    assert addresses[:3] == [0, 1, 2]
    assert addresses[N_WORDS] == 0
    assert max(addresses) == N_WORDS - 1


def test_uniform_addresses_in_bounds():
    trace = uniform_trace(500, N_WORDS, seed=1)
    assert all(0 <= a.address < N_WORDS for a in trace)


def test_read_fraction_respected():
    trace = uniform_trace(4000, N_WORDS, read_fraction=0.8, seed=2)
    beta, _unique, _frac = trace_statistics(trace)
    assert beta == pytest.approx(0.8, abs=0.03)


def test_read_fraction_extremes():
    all_reads = uniform_trace(100, N_WORDS, read_fraction=1.0, seed=0)
    assert all(a.op == "r" for a in all_reads)
    all_writes = uniform_trace(100, N_WORDS, read_fraction=0.0, seed=0)
    assert all(a.op == "w" for a in all_writes)


def test_read_fraction_validation():
    with pytest.raises(ValueError):
        uniform_trace(10, N_WORDS, read_fraction=1.5)


def test_zipf_concentrates_accesses():
    trace = zipfian_trace(4000, N_WORDS, skew=1.5, seed=3)
    counts = {}
    for access in trace:
        counts[access.address] = counts.get(access.address, 0) + 1
    hottest = max(counts.values())
    # The hottest word sees far more than its uniform share.
    assert hottest > 5 * (4000 / N_WORDS)
    assert all(0 <= a.address < N_WORDS for a in trace)


def test_zipf_skew_validation():
    with pytest.raises(ValueError):
        zipfian_trace(10, N_WORDS, skew=1.0)


def test_strided_pattern():
    trace = strided_trace(10, N_WORDS, stride=16, read_fraction=1.0)
    assert [a.address for a in trace[:4]] == [0, 16, 32, 48]
    with pytest.raises(ValueError):
        strided_trace(10, N_WORDS, stride=0)


def test_traces_reproducible_by_seed():
    a = uniform_trace(50, N_WORDS, seed=42)
    b = uniform_trace(50, N_WORDS, seed=42)
    assert a == b
    c = uniform_trace(50, N_WORDS, seed=43)
    assert a != c


def test_write_values_within_word(monkeypatch):
    trace = uniform_trace(200, N_WORDS, read_fraction=0.0, seed=5,
                          word_bits=16)
    assert all(0 <= a.value < (1 << 16) for a in trace)
    wide = uniform_trace(200, N_WORDS, read_fraction=0.0, seed=5,
                         word_bits=64)
    assert any(a.value > (1 << 32) for a in wide)


def test_trace_statistics_empty():
    assert trace_statistics([]) == (0.0, 0, 0.0)
