"""Crash recovery, end to end: SIGKILL a worker subprocess mid-sweep,
restart, and verify the resumed run skips checkpointed cells and lands
bit-identical results.

The heavy lifting (spawn / kill / resume / compare) lives in
``repro.jobs.smoke`` — the same script CI runs — so this test just
drives it against the repo's warm characterization cache and asserts
its verdict.
"""

import os
import subprocess
import sys

from .conftest import CACHE_PATH

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def test_sigkill_resume_is_bit_identical(paper_session):
    """``paper_session`` is requested only to guarantee the shared
    characterization cache is fully populated before the subprocess
    workers (which share it read-only) start."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.jobs.smoke", "--cache", CACHE_PATH],
        env=env, capture_output=True, text=True, timeout=1200,
    )
    tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-25:])
    assert proc.returncode == 0, tail
    assert "smoke passed" in proc.stdout, tail
