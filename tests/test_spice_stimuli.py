"""Stimulus builders: step, pulse, piecewise-linear."""

import pytest

from repro.spice import piecewise_linear, pulse, step


def test_step_levels():
    f = step(1.0, 0.0, 2.0, t_rise=0.2)
    assert f(0.5) == 0.0
    assert f(1.0) == 0.0
    assert f(1.1) == pytest.approx(1.0)
    assert f(1.2) == pytest.approx(2.0)
    assert f(5.0) == 2.0


def test_step_falling():
    f = step(0.0, 1.0, 0.0, t_rise=1.0)
    assert f(0.5) == pytest.approx(0.5)


def test_step_rejects_nonpositive_rise():
    with pytest.raises(ValueError):
        step(0.0, 0.0, 1.0, t_rise=0.0)


def test_pulse_shape():
    f = pulse(0.0, 1.0, t_delay=1.0, t_width=2.0, t_rise=0.5)
    assert f(0.0) == 0.0
    assert f(1.25) == pytest.approx(0.5)
    assert f(1.5) == pytest.approx(1.0)
    assert f(3.0) == pytest.approx(1.0)
    assert f(3.5 + 0.5) == pytest.approx(0.0)
    assert f(10.0) == 0.0


def test_pulse_separate_fall_time():
    f = pulse(0.0, 1.0, t_delay=0.0, t_width=1.0, t_rise=0.1, t_fall=0.4)
    assert f(1.1 + 0.2) == pytest.approx(0.5)


def test_pwl_interpolation():
    f = piecewise_linear([(0.0, 0.0), (1.0, 1.0), (2.0, -1.0)])
    assert f(-1.0) == 0.0
    assert f(0.5) == pytest.approx(0.5)
    assert f(1.5) == pytest.approx(0.0)
    assert f(99.0) == -1.0


def test_pwl_step_discontinuity():
    f = piecewise_linear([(0.0, 0.0), (1.0, 0.0), (1.0, 5.0), (2.0, 5.0)])
    assert f(0.99) == pytest.approx(0.0, abs=0.05)
    assert f(1.01) == pytest.approx(5.0, abs=0.05)


def test_pwl_validation():
    with pytest.raises(ValueError):
        piecewise_linear([])
    with pytest.raises(ValueError):
        piecewise_linear([(1.0, 0.0), (0.5, 1.0)])


def test_pwl_single_point_is_constant():
    f = piecewise_linear([(1.0, 3.0)])
    assert f(0.0) == 3.0
    assert f(2.0) == 3.0
