"""Process corners: construction and cell-level physics orderings."""

import pytest

from repro.devices import (
    FinFET,
    ProcessCorner,
    corner_library,
    corner_sweep,
    standard_corners,
)


def test_standard_corner_set():
    corners = standard_corners()
    assert set(corners) == {"tt", "ff", "ss", "fs", "sf"}
    assert corners["tt"].is_typical
    assert corners["ff"].delta_vt_n < 0 < corners["ss"].delta_vt_n
    assert corners["fs"].delta_vt_n < 0 < corners["fs"].delta_vt_p


def test_corner_library_shifts_thresholds(library):
    ss = standard_corners()["ss"]
    shifted = corner_library(library, ss)
    assert shifted.nfet_lvt.vt == pytest.approx(
        library.nfet_lvt.vt + 0.015
    )
    assert shifted.pfet_hvt.vt == pytest.approx(
        library.pfet_hvt.vt + 0.015
    )


def test_typical_corner_returns_same_library(library):
    tt = standard_corners()["tt"]
    assert corner_library(library, tt) is library


def test_ff_is_faster_and_leakier(library):
    corners = standard_corners()
    vdd = library.vdd
    tt = FinFET(library.nfet_hvt)
    ff = FinFET(corner_library(library, corners["ff"]).nfet_hvt)
    ss = FinFET(corner_library(library, corners["ss"]).nfet_hvt)
    assert ff.ion(vdd) > tt.ion(vdd) > ss.ion(vdd)
    assert ff.ioff(vdd) > tt.ioff(vdd) > ss.ioff(vdd)


@pytest.fixture(scope="module")
def hvt_corners(library):
    return corner_sweep(library, "hvt")


def test_corner_leakage_ordering(hvt_corners):
    assert (hvt_corners["ff"].leakage
            > hvt_corners["tt"].leakage
            > hvt_corners["ss"].leakage)


def test_corner_read_current_ordering(hvt_corners):
    assert (hvt_corners["ff"].i_read
            > hvt_corners["tt"].i_read
            > hvt_corners["ss"].i_read)


def test_skewed_corners_hurt_margins(hvt_corners):
    """FS (strong NFET, weak PFET) erodes one butterfly lobe, SF the
    other; both skewed corners lose hold margin vs TT."""
    assert hvt_corners["fs"].hsnm < hvt_corners["tt"].hsnm
    assert hvt_corners["sf"].hsnm < hvt_corners["tt"].hsnm


def test_fs_corner_writes_easiest(hvt_corners):
    """Strong access NFET + weak pull-up PFET = lowest flip voltage."""
    flips = {name: s.v_wl_flip for name, s in hvt_corners.items()}
    assert flips["fs"] == min(flips.values())
    assert flips["sf"] == max(flips.values())


def test_corner_validation():
    corner = ProcessCorner("custom", -0.01, 0.02)
    assert not corner.is_typical
